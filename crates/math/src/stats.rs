//! Empirical statistics: streaming summaries, histograms, empirical
//! distributions and Kolmogorov–Smirnov distances.
//!
//! These are the tools used to validate analytical SSTA results against
//! Monte Carlo ground truth — every accuracy number in the reproduced
//! Table I and Fig. 7 flows through this module.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/extrema via Welford's algorithm.
///
/// # Example
///
/// ```
/// use ssta_math::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A fixed-range histogram with uniform bins plus underflow/overflow.
///
/// Used to reproduce Fig. 6 (edge-criticality histogram).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n_bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(n_bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation. Values exactly equal to `hi` land in the last
    /// bin (closed upper edge), which keeps criticality 1.0 visible.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let n = self.bins.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64) as usize).min(n - 1);
        self.bins[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The `(low_edge, high_edge)` of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Fraction of in-range observations in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.bins[i] as f64 / total as f64
        }
    }
}

/// An empirical distribution over a sorted sample vector.
///
/// # Example
///
/// ```
/// use ssta_math::EmpiricalDist;
///
/// let d = EmpiricalDist::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(d.cdf(2.5), 0.5);
/// assert_eq!(d.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalDist {
    sorted: Vec<f64>,
    summary: Summary,
}

impl EmpiricalDist {
    /// Builds the distribution, sorting the samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        let summary = samples.iter().copied().collect();
        EmpiricalDist {
            sorted: samples,
            summary,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.summary.std_dev()
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.summary.min()
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.summary.max()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Empirical CDF: fraction of samples `≤ x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile (inverse CDF) for `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile probability {p} out of [0,1]"
        );
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Two-sample Kolmogorov–Smirnov distance `sup |F₁ − F₂|`.
    pub fn ks_distance(&self, other: &EmpiricalDist) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.sorted {
            d = d.max((self.cdf(x) - other.cdf(x)).abs());
        }
        for &x in &other.sorted {
            d = d.max((self.cdf(x) - other.cdf(x)).abs());
        }
        d
    }

    /// KS distance against an analytical CDF.
    pub fn ks_against(&self, cdf: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            d = d.max((f - i as f64 / n).abs());
            d = d.max((f - (i + 1) as f64 / n).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        // Unbiased variance of that classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let full: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..37].iter().copied().collect();
        let right: Summary = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), full.count());
        assert!((left.mean() - full.mean()).abs() < 1e-12);
        assert!((left.variance() - full.variance()).abs() < 1e-10);
    }

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s2 = Summary::new();
        s2.merge(&s);
        assert_eq!(s2.count(), 0);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.1, 0.3, 0.3, 0.6, 0.99, 1.0, -0.5, 1.5] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 2]); // 1.0 lands in the last bin
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bin_edges(1), (0.25, 0.5));
        assert!((h.fraction(1) - 2.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn empirical_cdf_and_quantile() {
        let d = EmpiricalDist::from_samples(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.cdf(5.0), 0.0);
        assert_eq!(d.cdf(10.0), 0.25);
        assert_eq!(d.cdf(25.0), 0.5);
        assert_eq!(d.cdf(100.0), 1.0);
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(0.25), 10.0);
        assert_eq!(d.quantile(0.26), 20.0);
        assert_eq!(d.quantile(1.0), 40.0);
    }

    #[test]
    fn ks_distance_of_identical_is_zero() {
        let a = EmpiricalDist::from_samples(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_distance_of_disjoint_is_one() {
        let a = EmpiricalDist::from_samples(vec![1.0, 2.0]);
        let b = EmpiricalDist::from_samples(vec![10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    #[test]
    fn ks_against_own_gaussian_is_small() {
        // Deterministic quasi-sample: inverse-cdf of a uniform lattice.
        let n = 2000;
        let samples: Vec<f64> = (0..n)
            .map(|i| crate::normal_quantile((i as f64 + 0.5) / n as f64))
            .collect();
        let d = EmpiricalDist::from_samples(samples);
        let ks = d.ks_against(crate::normal_cdf);
        assert!(ks < 1.0 / n as f64 + 1e-9, "ks = {ks}");
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empirical_rejects_empty() {
        let _ = EmpiricalDist::from_samples(vec![]);
    }
}
