//! Byte-level primitives for deterministic binary codecs.
//!
//! The model store's compact binary payload format (SSTM codec 1) is
//! built from three primitives:
//!
//! * **LEB128 varints** for lengths and indices — small values (the
//!   overwhelming majority in extracted models) cost one byte;
//! * **bit-exact `f64`s** — written as the IEEE-754 bit pattern in
//!   little-endian order, so a decode→encode round trip reproduces the
//!   input byte for byte, with no text-formatting loss;
//! * **length-prefixed strings and sequences** — every variable-sized
//!   field carries its element count up front, so a reader can never
//!   run past a corrupted length without noticing.
//!
//! [`ByteWriter`] produces such streams; [`ByteReader`] consumes them
//! with precise, offset-carrying errors ([`CodecError`]) instead of
//! panics, because store payloads cross trust boundaries (files written
//! by other processes, other machines, other versions).

use std::fmt;

/// Longest legal LEB128 encoding of a `u64` (10 × 7 bits ≥ 64 bits).
const MAX_VARINT_BYTES: usize = 10;

/// A decoding failure: what went wrong and where in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which the defect was detected.
    pub offset: usize,
    /// Human-readable description of the defect.
    pub reason: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte stream writer for deterministic binary encodings.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as a single `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u64` as an LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_varint(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian
    /// (bit-exact; NaN payloads and signed zeros survive).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes with no length prefix (caller frames them).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over an encoded byte stream with offset-carrying errors.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn err(&self, reason: impl Into<String>) -> CodecError {
        CodecError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.err(format!("need {n} bytes, have {}", self.remaining())));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] at end of stream.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean byte, rejecting anything but `0`/`1`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] at end of stream or on a non-boolean byte.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => {
                self.pos -= 1;
                Err(self.err(format!("invalid boolean byte {b:#04x}")))
            }
        }
    }

    /// Reads an LEB128 varint `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or an encoding longer than
    /// ten bytes (no `u64` needs more).
    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let start = self.pos;
        let mut value: u64 = 0;
        for i in 0..MAX_VARINT_BYTES {
            let byte = self.get_u8().map_err(|_| CodecError {
                offset: start,
                reason: "truncated varint".into(),
            })?;
            let payload = u64::from(byte & 0x7f);
            if i == MAX_VARINT_BYTES - 1 && payload > 1 {
                return Err(CodecError {
                    offset: start,
                    reason: "varint overflows u64".into(),
                });
            }
            value |= payload << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError {
            offset: start,
            reason: "varint longer than 10 bytes".into(),
        })
    }

    /// Reads a varint and bounds-checks it as a collection length.
    ///
    /// `limit` guards against allocating gigabytes on a corrupted
    /// length prefix; pass the caller's own structural bound.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or a length above `limit`.
    pub fn get_len(&mut self, limit: usize) -> Result<usize, CodecError> {
        let start = self.pos;
        let v = self.get_varint()?;
        if v > limit as u64 {
            return Err(CodecError {
                offset: start,
                reason: format!("length {v} exceeds limit {limit}"),
            });
        }
        Ok(v as usize)
    }

    /// Reads a `usize` varint.
    ///
    /// # Errors
    ///
    /// See [`ByteReader::get_varint`].
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let start = self.pos;
        let v = self.get_varint()?;
        usize::try_from(v).map_err(|_| CodecError {
            offset: start,
            reason: format!("value {v} does not fit usize"),
        })
    }

    /// Reads an `f64` from its little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        let bytes = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("8 bytes"),
        )))
    }

    /// Reads a length-prefixed `f64` vector (length capped by the
    /// remaining stream size).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or an oversized length.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_len(self.remaining() / 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_len(self.remaining())?;
        let start = self.pos;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|e| CodecError {
                offset: start,
                reason: format!("invalid UTF-8 string: {e}"),
            })
    }

    /// Asserts the stream is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if trailing bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(self.err(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_is_minimal_for_small_values() {
        let mut w = ByteWriter::new();
        w.put_varint(127);
        assert_eq!(w.len(), 1);
        w.put_varint(128);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: longer than any u64 needs.
        let bytes = [0xffu8; 11];
        assert!(ByteReader::new(&bytes).get_varint().is_err());
        // Truncated mid-varint.
        let bytes = [0x80u8];
        assert!(ByteReader::new(&bytes).get_varint().is_err());
        // Tenth byte carrying more than the top u64 bit.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x02);
        assert!(ByteReader::new(&bytes).get_varint().is_err());
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -1234.5678e-9,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let mut w = ByteWriter::new();
            w.put_f64(v);
            let bytes = w.into_bytes();
            let back = ByteReader::new(&bytes).get_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payload survives too.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = ByteWriter::new();
        w.put_f64(nan);
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).get_f64().unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn strings_and_slices_round_trip() {
        let mut w = ByteWriter::new();
        w.put_str("grüß-gott");
        w.put_f64_slice(&[1.0, -2.0, 3.25]);
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "grüß-gott");
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.0, -2.0, 3.25]);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn reader_errors_carry_offsets() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        let e = r.get_f64().unwrap_err();
        assert_eq!(e.offset, 1);
        assert!(e.reason.contains("need 8 bytes"));
    }

    #[test]
    fn bool_rejects_other_bytes() {
        let bytes = [2u8];
        let e = ByteReader::new(&bytes).get_bool().unwrap_err();
        assert!(e.reason.contains("boolean"));
    }

    #[test]
    fn length_limit_is_enforced() {
        let mut w = ByteWriter::new();
        w.put_usize(1_000_000);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).get_len(10).is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }
}
