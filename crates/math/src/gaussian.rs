//! Standard-normal functions and Clark's max-of-Gaussians moments.
//!
//! Block-based SSTA reduces every timing computation to two kernels on
//! first-order Gaussian forms: `sum` (exact) and `max` (approximated by
//! moment matching). This module provides the scalar pieces:
//!
//! * `φ` ([`normal_pdf`]) and `Φ` ([`normal_cdf`]) of the standard normal,
//!   implemented with W. J. Cody's rational-Chebyshev `erf`/`erfc`
//!   approximations (double precision over the whole real line);
//! * `Φ⁻¹` ([`normal_quantile`]), Acklam's algorithm plus one Halley
//!   refinement step;
//! * [`clark_max`], the mean/variance/tightness-probability of
//!   `max{A, B}` for jointly Gaussian `A`, `B` (Clark, *Operations
//!   Research* 9(2), 1961 — equations (6)–(8) of the DATE'09 paper).

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// `1/sqrt(2π)`, the normalization constant of the standard normal pdf.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// `1/sqrt(π)`, used by the asymptotic erfc expansion.
const FRAC_1_SQRT_PI: f64 = 0.564_189_583_547_756_3;

/// The error function `erf(x)`, accurate to full double precision.
///
/// Implementation: W. J. Cody's rational Chebyshev approximations
/// ("Rational Chebyshev approximation for the error function",
/// *Math. Comp.* 23, 1969), the same kernel used by most libm
/// implementations.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= 0.46875 {
        erf_small(x)
    } else {
        let e = erfc_large(y);
        if x >= 0.0 {
            1.0 - e
        } else {
            e - 1.0
        }
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Keeps full relative precision in the far right tail (where
/// `1 - erf(x)` would cancel catastrophically), which matters for tiny
/// edge criticalities.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= 0.46875 {
        1.0 - erf_small(x)
    } else if x >= 0.0 {
        erfc_large(y)
    } else {
        2.0 - erfc_large(y)
    }
}

/// Cody region 1: |x| <= 0.46875.
fn erf_small(x: f64) -> f64 {
    const A: [f64; 5] = [
        3.161_123_743_870_565_6e0,
        1.138_641_541_510_501_6e2,
        3.774_852_376_853_02e2,
        3.209_377_589_138_469_4e3,
        1.857_777_061_846_031_5e-1,
    ];
    const B: [f64; 4] = [
        2.360_129_095_234_412_2e1,
        2.440_246_379_344_441_7e2,
        1.282_616_526_077_372_3e3,
        2.844_236_833_439_171e3,
    ];
    let z = x * x;
    let mut num = A[4] * z;
    let mut den = z;
    for i in 0..3 {
        num = (num + A[i]) * z;
        den = (den + B[i]) * z;
    }
    x * (num + A[3]) / (den + B[3])
}

/// Cody regions 2 and 3: erfc(y) for y > 0.46875.
fn erfc_large(y: f64) -> f64 {
    if y <= 4.0 {
        const C: [f64; 9] = [
            5.641_884_969_886_701e-1,
            8.883_149_794_388_375,
            6.611_919_063_714_163e1,
            2.986_351_381_974_001e2,
            8.819_522_212_417_69e2,
            1.712_047_612_634_070_6e3,
            2.051_078_377_826_071_5e3,
            1.230_339_354_797_997_2e3,
            2.153_115_354_744_038_3e-8,
        ];
        const D: [f64; 8] = [
            1.574_492_611_070_983_5e1,
            1.176_939_508_913_125e2,
            5.371_811_018_620_099e2,
            1.621_389_574_566_690_2e3,
            3.290_799_235_733_459_6e3,
            4.362_619_090_143_247e3,
            3.439_367_674_143_721_6e3,
            1.230_339_354_803_749_4e3,
        ];
        let mut num = C[8] * y;
        let mut den = y;
        for i in 0..7 {
            num = (num + C[i]) * y;
            den = (den + D[i]) * y;
        }
        let r = (num + C[7]) / (den + D[7]);
        scaled_exp(y) * r
    } else if y < 26.5 {
        const P: [f64; 6] = [
            3.053_266_349_612_323_6e-1,
            3.603_448_999_498_044_5e-1,
            1.257_817_261_112_292_6e-1,
            1.608_378_514_874_227_5e-2,
            6.587_491_615_298_378e-4,
            1.631_538_713_730_209_7e-2,
        ];
        const Q: [f64; 5] = [
            2.568_520_192_289_822,
            1.872_952_849_923_460_4,
            5.279_051_029_514_285e-1,
            6.051_834_131_244_132e-2,
            2.335_204_976_268_691_8e-3,
        ];
        let z = 1.0 / (y * y);
        let mut num = P[5] * z;
        let mut den = z;
        for i in 0..4 {
            num = (num + P[i]) * z;
            den = (den + Q[i]) * z;
        }
        let r = z * (num + P[4]) / (den + Q[4]);
        scaled_exp(y) * (FRAC_1_SQRT_PI - r) / y
    } else {
        0.0
    }
}

/// `exp(-y²)` computed with the split `y = hi + lo` trick to avoid losing
/// precision when `y²` is large.
fn scaled_exp(y: f64) -> f64 {
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp()
}

/// The standard normal probability density `φ(x)`.
///
/// # Example
///
/// ```
/// let at_zero = ssta_math::normal_pdf(0.0);
/// assert!((at_zero - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn normal_pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// The standard normal cumulative distribution `Φ(x)`.
///
/// # Example
///
/// ```
/// assert!((ssta_math::normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((ssta_math::normal_cdf(1.959963984540054) - 0.975).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// The standard normal quantile `Φ⁻¹(p)` (inverse cdf).
///
/// Uses Acklam's rational approximation refined by one step of Halley's
/// method, giving full double precision for `p` in `(0, 1)`.
///
/// Returns `-∞` for `p == 0`, `+∞` for `p == 1` and `NaN` outside `[0, 1]`.
///
/// # Example
///
/// ```
/// let z = ssta_math::normal_quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-12);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239e0,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838e0,
        -2.549_732_539_343_734e0,
        4.374_664_141_464_968e0,
        2.938_163_982_698_783e0,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996e0,
        3.754_408_661_907_416e0,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step drives the residual to machine precision.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Moment-matched parameters of `max{A, B}` for jointly Gaussian `A`, `B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxMoments {
    /// Mean of `max{A, B}` (equation (7) of the paper).
    pub mean: f64,
    /// Variance of `max{A, B}` (equation (8) of the paper), clamped at 0.
    pub variance: f64,
    /// Tightness probability `P{A ≥ B}` (equation (6) of the paper).
    pub tightness: f64,
}

/// Clark's formulas for the first two moments of `max{A, B}` where
/// `A ~ N(mean_a, var_a)`, `B ~ N(mean_b, var_b)` with covariance `cov`.
///
/// When `θ² = var_a + var_b − 2·cov` vanishes, `A − B` is deterministic and
/// the max degenerates to whichever operand has the larger mean; tightness
/// snaps to 1 (`A` wins ties, matching the paper's `P{A ≥ B}` convention).
///
/// # Example
///
/// ```
/// use ssta_math::clark_max;
///
/// // Two iid standard normals: E[max] = 1/sqrt(pi).
/// let m = clark_max(0.0, 1.0, 0.0, 1.0, 0.0);
/// assert!((m.mean - 0.5641895835477563).abs() < 1e-12);
/// assert!((m.tightness - 0.5).abs() < 1e-15);
/// ```
pub fn clark_max(mean_a: f64, var_a: f64, mean_b: f64, var_b: f64, cov: f64) -> MaxMoments {
    let theta_sq = var_a + var_b - 2.0 * cov;
    // Scale-aware degeneracy threshold: differences smaller than this are
    // numerically indistinguishable from perfectly correlated operands.
    let scale = var_a.abs().max(var_b.abs()).max(1e-300);
    if theta_sq <= 1e-12 * scale {
        return if mean_a >= mean_b {
            MaxMoments {
                mean: mean_a,
                variance: var_a.max(0.0),
                tightness: 1.0,
            }
        } else {
            MaxMoments {
                mean: mean_b,
                variance: var_b.max(0.0),
                tightness: 0.0,
            }
        };
    }
    let theta = theta_sq.sqrt();
    let alpha = (mean_a - mean_b) / theta;
    let tp = normal_cdf(alpha);
    let pdf = normal_pdf(alpha);

    let mean = tp * mean_a + (1.0 - tp) * mean_b + theta * pdf;
    let second_moment = tp * (var_a + mean_a * mean_a)
        + (1.0 - tp) * (var_b + mean_b * mean_b)
        + (mean_a + mean_b) * theta * pdf;
    let variance = (second_moment - mean * mean).max(0.0);

    MaxMoments {
        mean,
        variance,
        tightness: tp,
    }
}

/// The tightness probability `P{A ≥ B}` alone (equation (6) of the paper).
///
/// Cheaper than [`clark_max`] when only the probability is needed — the
/// criticality engine calls this in its innermost loop.
pub fn tightness_probability(mean_a: f64, var_a: f64, mean_b: f64, var_b: f64, cov: f64) -> f64 {
    let theta_sq = var_a + var_b - 2.0 * cov;
    let scale = var_a.abs().max(var_b.abs()).max(1e-300);
    if theta_sq <= 1e-12 * scale {
        return if mean_a >= mean_b { 1.0 } else { 0.0 };
    }
    normal_cdf((mean_a - mean_b) / theta_sq.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.1, 0.1124629160182849),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (-1.0, -0.8427007929497149),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-14,
                "erf({x}) = {} != {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_tail_keeps_relative_precision() {
        // erfc(5) = 1.5374597944280348e-12 (mpmath).
        let got = erfc(5.0);
        let want = 1.5374597944280348e-12;
        assert!(((got - want) / want).abs() < 1e-10, "erfc(5) = {got}");
        // erfc(10) = 2.0884875837625448e-45.
        let got = erfc(10.0);
        let want = 2.088_487_583_762_545e-45;
        assert!(((got - want) / want).abs() < 1e-9, "erfc(10) = {got}");
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for &x in &[-8.0, -2.5, -0.3, 0.0, 0.2, 1.7, 4.0, 9.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x = {x}");
        }
    }

    #[test]
    fn cdf_symmetry_and_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        for &x in &[0.5, 1.0, 2.33, 4.7] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-14);
        }
        // Φ(1.6448536269514722) = 0.95.
        assert!((normal_cdf(1.6448536269514722) - 0.95).abs() < 1e-13);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-10, 1e-4, 0.01, 0.3, 0.5, 0.77, 0.99, 1.0 - 1e-6] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-13 * p.max(1.0 - p).max(1e-3),
                "round trip failed at p = {p}: x = {x}, cdf = {}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
        assert!((normal_quantile(0.5)).abs() < 1e-15);
    }

    #[test]
    fn clark_max_iid_standard_normals() {
        // E[max(X,Y)] = 1/sqrt(pi), Var = 1 - 1/pi for iid N(0,1).
        let m = clark_max(0.0, 1.0, 0.0, 1.0, 0.0);
        assert!((m.mean - FRAC_1_SQRT_PI).abs() < 1e-12);
        assert!((m.variance - (1.0 - 1.0 / PI)).abs() < 1e-12);
        assert!((m.tightness - 0.5).abs() < 1e-15);
    }

    #[test]
    fn clark_max_dominant_operand() {
        // A is 10 sigma above B: max ≈ A.
        let m = clark_max(10.0, 1.0, 0.0, 1.0, 0.0);
        assert!((m.mean - 10.0).abs() < 1e-8);
        assert!((m.variance - 1.0).abs() < 1e-6);
        assert!(m.tightness > 1.0 - 1e-10);
    }

    #[test]
    fn clark_max_perfectly_correlated_degenerates() {
        let m = clark_max(1.0, 4.0, 3.0, 4.0, 4.0); // A = B - 2 surely
        assert_eq!(m.mean, 3.0);
        assert_eq!(m.variance, 4.0);
        assert_eq!(m.tightness, 0.0);

        let m = clark_max(3.0, 4.0, 1.0, 4.0, 4.0);
        assert_eq!(m.mean, 3.0);
        assert_eq!(m.tightness, 1.0);
    }

    #[test]
    fn clark_max_is_symmetric_in_distribution() {
        let m1 = clark_max(1.0, 2.0, 3.0, 4.0, 0.5);
        let m2 = clark_max(3.0, 4.0, 1.0, 2.0, 0.5);
        assert!((m1.mean - m2.mean).abs() < 1e-12);
        assert!((m1.variance - m2.variance).abs() < 1e-12);
        assert!((m1.tightness + m2.tightness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clark_max_exceeds_both_means() {
        // E[max{A,B}] >= max(E[A], E[B]) always holds for the exact max;
        // Clark's approximation preserves it.
        for &(ma, va, mb, vb, cov) in &[
            (0.0, 1.0, 0.0, 1.0, 0.0),
            (1.0, 0.5, 1.2, 2.0, 0.3),
            (-3.0, 1.0, -2.9, 1.0, 0.9),
        ] {
            let m = clark_max(ma, va, mb, vb, cov);
            assert!(m.mean >= ma.max(mb) - 1e-12);
        }
    }

    #[test]
    fn tightness_matches_clark() {
        let (ma, va, mb, vb, cov) = (1.0, 2.0, 1.5, 1.0, 0.4);
        let m = clark_max(ma, va, mb, vb, cov);
        let tp = tightness_probability(ma, va, mb, vb, cov);
        assert!((m.tightness - tp).abs() < 1e-15);
    }

    #[test]
    fn tightness_monte_carlo_cross_check() {
        // P{A >= B} with A ~ N(0.3, 1), B ~ N(0, 1), cov = 0.5:
        // A - B ~ N(0.3, 1 + 1 - 1 = 1)  =>  P = Φ(0.3).
        let tp = tightness_probability(0.3, 1.0, 0.0, 1.0, 0.5);
        assert!((tp - normal_cdf(0.3)).abs() < 1e-15);
    }
}
