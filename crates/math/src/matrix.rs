use crate::MathError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// SSTA covariance matrices have one row/column per spatial grid — at most a
/// few hundred — so a straightforward dense representation is both simple and
/// fast enough. The API is deliberately small: exactly the operations the
/// timing engine needs.
///
/// # Example
///
/// ```
/// use ssta_math::Matrix;
///
/// # fn main() -> Result<(), ssta_math::MathError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] for zero rows and
    /// [`MathError::DimensionMismatch`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, MathError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MathError::EmptyInput {
                context: "Matrix::from_rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(MathError::DimensionMismatch {
                    context: "Matrix::from_rows",
                    expected: (1, cols),
                    found: (i, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::from_vec",
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a square matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major storage, mutably. Kernels that sweep the
    /// whole matrix (eigensolvers, transposes) use this to work on flat
    /// slices instead of paying per-entry index checks.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transposed matrix.
    ///
    /// Copies in square blocks so both the source reads and the
    /// destination writes stay within a few cache lines at a time — a
    /// naive row sweep writes the destination column-major, which thrashes
    /// the cache once the matrix outgrows L1 (design-level PCA transforms
    /// are `n_grids × n_grids`-ish, in the hundreds for many-instance
    /// designs).
    pub fn transposed(&self) -> Matrix {
        const BLOCK: usize = 32;
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i0 in (0..self.rows).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(self.rows);
            for j0 in (0..self.cols).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(self.cols);
                for i in i0..i1 {
                    let src = &self.row(i)[j0..j1];
                    for (dj, &v) in src.iter().enumerate() {
                        t.data[(j0 + dj) * self.rows + i] = v;
                    }
                }
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::matmul",
                expected: (self.cols, self.cols),
                found: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            for (k, &lhs) in lhs_row.iter().enumerate() {
                if lhs == 0.0 {
                    continue;
                }
                let rhs_row = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &rhs) in rhs_row.iter().enumerate() {
                    out_row[j] += lhs * rhs;
                }
            }
        }
        Ok(out)
    }

    /// Cache-blocked matrix product `self · other`, bit-identical to
    /// [`matmul`](Self::matmul).
    ///
    /// Uses the same 32×32 tiling as [`transposed`](Self::transposed):
    /// the `(k, j)` panel of `other` touched by one tile fits in L1, so
    /// sweeping many rows of `self` over a wide right-hand side (the
    /// per-instance replacement build multiplies a small whitening
    /// matrix by a `grids × design-components` transform slice) stops
    /// re-streaming the whole right operand from L2/L3 once per row.
    ///
    /// Bit-identity holds because for every output entry `(i, j)` the
    /// contributions accumulate in the same ascending-`k` order as the
    /// unblocked kernel (the `k`-tile loop is outside the `j`-tile
    /// loop), with the same skip of exact-zero left entries.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul_blocked(&self, other: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::matmul_blocked",
                expected: (self.cols, self.cols),
                found: (other.rows, other.cols),
            });
        }
        const BLOCK: usize = 32;
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i0 in (0..self.rows).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(self.rows);
            for k0 in (0..self.cols).step_by(BLOCK) {
                let k1 = (k0 + BLOCK).min(self.cols);
                for j0 in (0..other.cols).step_by(BLOCK) {
                    let j1 = (j0 + BLOCK).min(other.cols);
                    for i in i0..i1 {
                        let lhs_row = &self.row(i)[k0..k1];
                        for (dk, &lhs) in lhs_row.iter().enumerate() {
                            if lhs == 0.0 {
                                continue;
                            }
                            let rhs_row = &other.row(k0 + dk)[j0..j1];
                            let out_row = &mut out.row_mut(i)[j0..j1];
                            for (o, &rhs) in out_row.iter_mut().zip(rhs_row) {
                                *o += lhs * rhs;
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] unless `v.len() == cols`.
    pub fn mat_vec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::mat_vec",
                expected: (self.cols, 1),
                found: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = dot(self.row(i), v);
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `selfᵀ · v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] unless `v.len() == rows`.
    pub fn mat_vec_transposed(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::mat_vec_transposed",
                expected: (self.rows, 1),
                found: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                out[j] += vi * a;
            }
        }
        Ok(out)
    }

    /// Extracts the sub-matrix given by a list of row indices and a list of
    /// column indices (in the given order; duplicates are allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        Matrix::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    /// Scales every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Largest absolute asymmetry `max |a_ij - a_ji|`; `0.0` for non-square.
    pub fn max_asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Largest absolute entry-wise difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, MathError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::max_abs_diff",
                expected: (self.rows, self.cols),
                found: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length wins (standard `zip` semantics).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, MathError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty_input() {
        let err = Matrix::from_rows(&[]).unwrap_err();
        assert!(matches!(err, MathError::EmptyInput { .. }));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn blocked_transpose_matches_reference_beyond_one_block() {
        // Shapes straddling the 32-wide block boundary, rectangular both
        // ways.
        for (r, c) in [(33, 70), (70, 33), (64, 64), (1, 100), (100, 1)] {
            let a = Matrix::from_fn(r, c, |i, j| (i * 1000 + j) as f64);
            let t = a.transposed();
            assert_eq!(t.rows(), c);
            assert_eq!(t.cols(), r);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t[(j, i)], a[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_unblocked() {
        // Shapes straddling the 32-wide tile boundary, rectangular both
        // ways, plus a scattering of exact zeros so the zero-skip path
        // is exercised identically in both kernels. Entries are scaled
        // irrationally so any accumulation-order difference would show
        // up in the low mantissa bits.
        for (m, k, n) in [
            (1, 1, 1),
            (7, 5, 3),
            (33, 70, 41),
            (70, 33, 64),
            (64, 64, 64),
            (1, 100, 33),
            (40, 1, 40),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| {
                if (i + j) % 7 == 0 {
                    0.0
                } else {
                    ((i * 31 + j * 17) as f64).sin() / 3.0
                }
            });
            let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 29) as f64).cos() * 1.7);
            let blocked = a.matmul_blocked(&b).unwrap();
            let reference = a.matmul(&b).unwrap();
            assert_eq!(
                blocked.as_slice(),
                reference.as_slice(),
                "blocked matmul diverged for {m}x{k}·{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul_blocked(&b).is_err());
    }

    #[test]
    fn mat_vec_and_transposed_agree_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let v = vec![10.0, 20.0];
        let got = a.mat_vec(&v).unwrap();
        assert_eq!(got, vec![50.0, 110.0, 170.0]);

        let w = vec![1.0, 1.0, 1.0];
        let got_t = a.mat_vec_transposed(&w).unwrap();
        assert_eq!(got_t, vec![9.0, 12.0]);
    }

    #[test]
    fn select_extracts_submatrix() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        let s = a.select(&[1, 3], &[0, 2]);
        assert_eq!(s[(0, 0)], 10.0);
        assert_eq!(s[(0, 1)], 12.0);
        assert_eq!(s[(1, 0)], 30.0);
        assert_eq!(s[(1, 1)], 32.0);
    }

    #[test]
    fn asymmetry_detects_non_symmetric() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = 0.5;
        assert!((a.max_asymmetry() - 0.5).abs() < 1e-15);
        a[(1, 0)] = 0.5;
        assert_eq!(a.max_asymmetry(), 0.0);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn display_contains_dimensions() {
        let text = format!("{}", Matrix::zeros(2, 2));
        assert!(text.contains("2x2"));
    }
}
