use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// Two operands (or a matrix and a vector) have incompatible shapes.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// The shape that was expected, e.g. `(3, 3)`.
        expected: (usize, usize),
        /// The shape that was found.
        found: (usize, usize),
    },
    /// A matrix that must be symmetric is not (within tolerance).
    NotSymmetric {
        /// Largest `|a_ij - a_ji|` encountered.
        max_asymmetry: f64,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot where factorization broke down.
        pivot: usize,
    },
    /// The Jacobi eigensolver did not converge within its sweep budget.
    EigenNoConvergence {
        /// Remaining off-diagonal Frobenius norm when iteration stopped.
        off_diagonal_norm: f64,
    },
    /// An operation received an empty input where data was required.
    EmptyInput {
        /// Human-readable description of the operation that failed.
        context: &'static str,
    },
    /// A scalar argument was out of its mathematical domain.
    DomainError {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            MathError::NotSymmetric { max_asymmetry } => {
                write!(
                    f,
                    "matrix is not symmetric (max |a_ij - a_ji| = {max_asymmetry:e})"
                )
            }
            MathError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            MathError::EigenNoConvergence { off_diagonal_norm } => write!(
                f,
                "jacobi eigensolver did not converge (off-diagonal norm {off_diagonal_norm:e})"
            ),
            MathError::EmptyInput { context } => {
                write!(f, "empty input in {context}")
            }
            MathError::DomainError { context, value } => {
                write!(f, "domain error in {context}: value {value}")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = MathError::DimensionMismatch {
            context: "matmul",
            expected: (2, 3),
            found: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<MathError>();
    }
}
