//! Symmetric eigendecomposition via Householder tridiagonalization and
//! the implicit-shift QL iteration.
//!
//! The cyclic Jacobi method in [`crate::eigen`] is numerically robust but
//! performs `O(n³)` work *per sweep* and needs many sweeps on the large,
//! strongly-correlated covariance matrices that a many-instance design
//! produces. The classical two-phase route is much cheaper:
//!
//! 1. **Householder reduction** (`A = Q·T·Qᵀ` with `T` tridiagonal) —
//!    one `O(4/3·n³)` pass, accumulating `Q`;
//! 2. **implicit-shift QL** on the tridiagonal `(d, e)` pair — `O(n)`
//!    rotations per eigenvalue, each updating the eigenvector matrix in
//!    `O(n)`, so `O(n²)` per eigenvalue and `O(n³)` overall with a small
//!    constant.
//!
//! On a 200×200 spatial-correlation matrix this is well over 5× faster
//! than Jacobi while matching its spectrum to working precision. Both
//! phases are loop-order deterministic: the same input always produces
//! the bit-identical decomposition, which the repo's parallel-vs-serial
//! bit-exactness invariants rely on.

use crate::eigen::{collect_sorted, validate_symmetric, SymmetricEigen};
use crate::{MathError, Matrix};

/// Maximum implicit-shift QL iterations per eigenvalue. Convergence is
/// cubic; 30 matches the classical reference implementations and is
/// practically unreachable for symmetric input.
const MAX_QL_ITERATIONS: usize = 30;

/// Computes all eigenvalues and eigenvectors of a symmetric matrix via
/// Householder tridiagonalization followed by implicit-shift QL.
///
/// This is the default solver behind
/// [`eigen::symmetric_eigen`](crate::eigen::symmetric_eigen); call it
/// directly only when the algorithm choice itself matters (benchmarks,
/// cross-checks against the Jacobi oracle).
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] for non-square input.
/// * [`MathError::NotSymmetric`] if `a` deviates from symmetry by more
///   than `1e-8` relative to its largest diagonal entry.
/// * [`MathError::EigenNoConvergence`] if any eigenvalue fails to
///   converge within the iteration budget.
pub fn symmetric_eigen_ql(a: &Matrix) -> Result<SymmetricEigen, MathError> {
    validate_symmetric(a, "symmetric_eigen_ql")?;
    let n = a.rows();
    if n == 0 {
        // Match the Jacobi path: an empty matrix has an empty spectrum.
        return Ok(SymmetricEigen {
            eigenvalues: Vec::new(),
            eigenvectors: a.clone(),
        });
    }
    let mut q = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    householder_tridiagonalize(n, q.as_mut_slice(), &mut d, &mut e);
    // QL rotates eigenvector *columns*; work on the transpose so each
    // rotation touches two contiguous rows instead of two strided
    // columns.
    let mut zt = q.transposed();
    tridiagonal_ql(&mut d, &mut e, n, zt.as_mut_slice())?;
    Ok(collect_sorted(&d, zt.transposed()))
}

/// Reduces the symmetric matrix in the flat row-major buffer `a` (`n × n`)
/// to tridiagonal form `(d, e)`, replacing `a` with the accumulated
/// orthogonal transform: on return `Q · tridiag(d, e) · Qᵀ` equals the
/// input. `e[0]` is zero; `e[i]` is the sub-diagonal entry coupling rows
/// `i-1` and `i`.
///
/// Classical `tred2` (Householder with transform accumulation), written
/// for 0-based row-major storage with the inner loops arranged as
/// contiguous row sweeps — the `O(n³)` accumulation pass in particular
/// runs row-major with a scratch vector instead of the textbook
/// column-major form.
fn householder_tridiagonalize(n: usize, a: &mut [f64], d: &mut [f64], e: &mut [f64]) {
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = a[i * n..i * n + l + 1].iter().map(|x| x.abs()).sum();
            if scale == 0.0 {
                // Row already reduced; nothing to eliminate.
                e[i] = a[i * n + l];
            } else {
                for x in &mut a[i * n..i * n + l + 1] {
                    *x /= scale;
                    h += *x * *x;
                }
                let f = a[i * n + l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[i * n + l] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    // Store u/H in column i for the accumulation pass.
                    a[j * n + i] = a[i * n + j] / h;
                    // g = (A·u)_j using the still-symmetric lower part.
                    let mut g_sum = 0.0;
                    for k in 0..=j {
                        g_sum += a[j * n + k] * a[i * n + k];
                    }
                    for k in (j + 1)..=l {
                        g_sum += a[k * n + j] * a[i * n + k];
                    }
                    e[j] = g_sum / h;
                    f_acc += e[j] * a[i * n + j];
                }
                let hh = f_acc / (h + h);
                // Rank-two update A ← A − u·pᵀ − p·uᵀ on the lower
                // triangle; rows j and i split so both sides borrow.
                let (rows, row_i) = a.split_at_mut(i * n);
                for j in 0..=l {
                    let f = row_i[j];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    let row_j = &mut rows[j * n..j * n + j + 1];
                    for ((x, &ek), &uik) in row_j.iter_mut().zip(e.iter()).zip(row_i[..=j].iter()) {
                        *x -= f * ek + g * uik;
                    }
                }
            }
        } else {
            e[i] = a[i * n + l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the transformation Q = H₁·H₂·…·Hₙ₋₂, sweeping rows with
    // a scratch g-vector so no inner loop walks a column.
    let mut g = vec![0.0; n];
    for i in 0..n {
        if d[i] != 0.0 {
            // g = uᵀ/H · A[0..i, 0..i] accumulated row by row.
            g[..i].fill(0.0);
            for k in 0..i {
                let uik = a[i * n + k];
                if uik == 0.0 {
                    continue;
                }
                let row_k = &a[k * n..k * n + i];
                for (gj, &akj) in g[..i].iter_mut().zip(row_k) {
                    *gj += uik * akj;
                }
            }
            // A[k, j] -= g[j]·u[k]/H, one contiguous row at a time.
            for k in 0..i {
                let uk = a[k * n + i];
                if uk == 0.0 {
                    continue;
                }
                let row_k = &mut a[k * n..k * n + i];
                for (akj, &gj) in row_k.iter_mut().zip(&g[..i]) {
                    *akj -= gj * uk;
                }
            }
        }
        d[i] = a[i * n + i];
        a[i * n + i] = 1.0;
        for j in 0..i {
            a[j * n + i] = 0.0;
            a[i * n + j] = 0.0;
        }
    }
}

/// `sqrt(a² + b²)` without destructive underflow or overflow.
fn pythag(a: f64, b: f64) -> f64 {
    let (absa, absb) = (a.abs(), b.abs());
    if absa > absb {
        let r = absb / absa;
        absa * (1.0 + r * r).sqrt()
    } else if absb == 0.0 {
        0.0
    } else {
        let r = absa / absb;
        absb * (1.0 + r * r).sqrt()
    }
}

/// Implicit-shift QL on a tridiagonal matrix `(d, e)` (with `e[0]`
/// unused), rotating the rows of the flat `n × n` buffer `zt` alongside —
/// `zt` holds the eigenvector accumulator *transposed*, so each Givens
/// rotation updates two contiguous rows. Classical `tqli`.
///
/// # Errors
///
/// Returns [`MathError::EigenNoConvergence`] if an eigenvalue exceeds the
/// iteration budget.
fn tridiagonal_ql(d: &mut [f64], e: &mut [f64], n: usize, zt: &mut [f64]) -> Result<(), MathError> {
    if n <= 1 {
        return Ok(());
    }
    // Renumber the off-diagonal so e[i] couples d[i] and d[i+1].
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iterations = 0;
        loop {
            // Find the first negligible off-diagonal at or after l; the
            // block [l, m] is then an unreduced tridiagonal submatrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] has converged.
            }
            if iterations == MAX_QL_ITERATIONS {
                return Err(MathError::EigenNoConvergence {
                    off_diagonal_norm: e[l].abs(),
                });
            }
            iterations += 1;

            // Wilkinson-style implicit shift from the leading 2×2.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from a rotation annihilated by underflow.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Rotate eigenvector columns i and i+1 — contiguous rows
                // of the transposed accumulator.
                let (lo, hi) = zt.split_at_mut((i + 1) * n);
                let row_lo = &mut lo[i * n..];
                let row_hi = &mut hi[..n];
                for (x, y) in row_lo.iter_mut().zip(row_hi.iter_mut()) {
                    let f = *y;
                    *y = s * *x + c * f;
                    *x = c * *x - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::symmetric_eigen_jacobi;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.eigenvalues.len();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.eigenvalues[i];
        }
        e.eigenvectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.eigenvectors.transposed())
            .unwrap()
    }

    fn exp_decay_covariance(n: usize, scale: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-d / scale).exp()
        })
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen_ql(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[7.0]]).unwrap();
        let e = symmetric_eigen_ql(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0]);
        assert_eq!(e.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn zero_by_zero_matrix_has_empty_spectrum() {
        // The Jacobi path accepted 0x0 input; the QL path must too.
        let e = symmetric_eigen_ql(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
        assert_eq!(e.eigenvectors.rows(), 0);
    }

    #[test]
    fn diagonal_matrix_is_already_solved() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]).unwrap();
        let e = symmetric_eigen_ql(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn reconstruction_and_orthonormality_on_covariance() {
        let a = exp_decay_covariance(40, 4.0);
        let e = symmetric_eigen_ql(&a).unwrap();
        assert!(reconstruct(&e).max_abs_diff(&a).unwrap() < 1e-9);
        let vtv = e.eigenvectors.transposed().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(40)).unwrap() < 1e-10);
    }

    #[test]
    fn agrees_with_jacobi_oracle_on_spectrum() {
        let a = exp_decay_covariance(24, 2.5);
        let ql = symmetric_eigen_ql(&a).unwrap();
        let jac = symmetric_eigen_jacobi(&a).unwrap();
        for (x, y) in ql.eigenvalues.iter().zip(&jac.eigenvalues) {
            assert!((x - y).abs() < 1e-9 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn handles_degenerate_spectra() {
        // Identity has a fully degenerate spectrum.
        let e = symmetric_eigen_ql(&Matrix::identity(10)).unwrap();
        for &lam in &e.eigenvalues {
            assert!((lam - 1.0).abs() < 1e-12);
        }
        let vtv = e.eigenvectors.transposed().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(10)).unwrap() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen_ql(&a),
            Err(MathError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn is_bit_deterministic() {
        let a = exp_decay_covariance(30, 3.0);
        let e1 = symmetric_eigen_ql(&a).unwrap();
        let e2 = symmetric_eigen_ql(&a).unwrap();
        assert_eq!(e1.eigenvalues, e2.eigenvalues);
        assert_eq!(e1.eigenvectors, e2.eigenvectors);
    }
}
