//! Seedable standard-normal sampling.
//!
//! `rand` 0.8 ships only the uniform distributions by default; the normal
//! distribution lives in the separate `rand_distr` crate. Monte Carlo needs
//! exactly one non-uniform distribution — N(0, 1) — so we implement the
//! Marsaglia polar method here rather than pull in another dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A standard-normal sampler caching the spare variate of the polar method.
///
/// # Example
///
/// ```
/// use ssta_math::rng::NormalSampler;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let mut normal = NormalSampler::new();
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draws one N(0, 1) variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Fills a slice with independent N(0, 1) variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }
}

/// Creates the deterministically seeded RNG used across the workspace.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = seeded_rng(7);
        let mut normal = NormalSampler::new();
        let s: Summary = (0..200_000).map(|_| normal.sample(&mut rng)).collect();
        assert!(s.mean().abs() < 0.01, "mean = {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.02, "var = {}", s.variance());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let draw = |seed| {
            let mut rng = seeded_rng(seed);
            let mut n = NormalSampler::new();
            (0..10).map(|_| n.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(123), draw(123));
        assert_ne!(draw(123), draw(124));
    }

    #[test]
    fn fill_covers_whole_slice() {
        let mut rng = seeded_rng(1);
        let mut n = NormalSampler::new();
        let mut buf = [0.0; 33];
        n.fill(&mut rng, &mut buf);
        assert!(buf.iter().all(|x| x.is_finite()));
        // Astronomically unlikely that any variate is exactly 0.
        assert!(buf.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn tail_fractions_are_plausible() {
        let mut rng = seeded_rng(99);
        let mut normal = NormalSampler::new();
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| normal.sample(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // True value is ~0.0455.
        assert!(
            (beyond_2sigma - 0.0455).abs() < 0.005,
            "got {beyond_2sigma}"
        );
    }
}
