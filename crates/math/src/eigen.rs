//! Symmetric eigendecomposition.
//!
//! Two solvers share one entry point:
//!
//! * [`symmetric_eigen`] — the default path, dispatching to the
//!   Householder + implicit-shift QL solver in [`crate::tridiag`]. For
//!   the design-level covariance matrices of many-instance designs
//!   (hundreds of grids) it is an order of magnitude faster than Jacobi.
//! * [`symmetric_eigen_jacobi`] — the cyclic Jacobi method, kept as a
//!   slow-but-transparent reference oracle: it never loses symmetry and
//!   its rotations are easy to audit, so tests cross-check the fast
//!   solver's spectrum against it.
//!
//! Both solvers are loop-order deterministic: the same input always
//! yields the bit-identical decomposition.

use crate::{MathError, Matrix};

/// The result of a symmetric eigendecomposition `A = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as matrix *columns*, in the same order as
    /// [`eigenvalues`](Self::eigenvalues).
    pub eigenvectors: Matrix,
}

/// Maximum number of Jacobi sweeps before giving up. Convergence is
/// typically reached in 6–12 sweeps even for n in the hundreds.
const MAX_SWEEPS: usize = 64;

/// Validates that `a` is square and symmetric (to `1e-8` relative to the
/// largest diagonal entry), returning the scale used for tolerances.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] for non-square input.
/// * [`MathError::NotSymmetric`] beyond the asymmetry tolerance.
pub(crate) fn validate_symmetric(a: &Matrix, context: &'static str) -> Result<f64, MathError> {
    let n = a.rows();
    if !a.is_square() {
        return Err(MathError::DimensionMismatch {
            context,
            expected: (n, n),
            found: (a.rows(), a.cols()),
        });
    }
    let scale = (0..n).map(|i| a[(i, i)].abs()).fold(1.0, f64::max);
    let asym = a.max_asymmetry();
    if asym > 1e-8 * scale {
        return Err(MathError::NotSymmetric {
            max_asymmetry: asym,
        });
    }
    Ok(scale)
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix.
///
/// Dispatches to the Householder + implicit-shift QL solver
/// ([`crate::tridiag::symmetric_eigen_ql`]); use
/// [`symmetric_eigen_jacobi`] when the (slower) Jacobi reference oracle
/// is wanted explicitly.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] for non-square input.
/// * [`MathError::NotSymmetric`] if `a` deviates from symmetry by more than
///   `1e-8` relative to its largest diagonal entry.
/// * [`MathError::EigenNoConvergence`] if the iteration budget is exhausted
///   (practically unreachable for well-formed covariance matrices).
///
/// # Example
///
/// ```
/// use ssta_math::{eigen, Matrix};
///
/// # fn main() -> Result<(), ssta_math::MathError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let decomp = eigen::symmetric_eigen(&a)?;
/// assert!((decomp.eigenvalues[0] - 3.0).abs() < 1e-12);
/// assert!((decomp.eigenvalues[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen, MathError> {
    crate::tridiag::symmetric_eigen_ql(a)
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix with
/// the cyclic Jacobi method — the reference oracle the fast QL solver is
/// cross-checked against.
///
/// # Errors
///
/// Same contract as [`symmetric_eigen`].
pub fn symmetric_eigen_jacobi(a: &Matrix) -> Result<SymmetricEigen, MathError> {
    let scale = validate_symmetric(a, "symmetric_eigen_jacobi")?;
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-14 * scale.max(f64::MIN_POSITIVE);

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol * n as f64 {
            return Ok(collect_diagonal(&m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation: choose t = tan(θ) so that the
                // rotated (p, q) entry vanishes.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                rotate(&mut m, p, q, c, s);
                rotate_columns(&mut v, p, q, c, s);
            }
        }
    }

    let off = off_diagonal_norm(&m);
    if off <= 1e-9 * scale * n as f64 {
        // Converged well enough for covariance work even if the strict
        // tolerance was not met.
        return Ok(collect_diagonal(&m, v));
    }
    Err(MathError::EigenNoConvergence {
        off_diagonal_norm: off,
    })
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    sum.sqrt()
}

/// Applies the two-sided Jacobi rotation `Jᵀ M J` in place, where `J` is the
/// Givens rotation in the (p, q) plane.
fn rotate(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];

    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;

    for k in 0..n {
        if k == p || k == q {
            continue;
        }
        let akp = m[(k, p)];
        let akq = m[(k, q)];
        m[(k, p)] = c * akp - s * akq;
        m[(p, k)] = m[(k, p)];
        m[(k, q)] = s * akp + c * akq;
        m[(q, k)] = m[(k, q)];
    }
}

/// Applies the rotation to the eigenvector accumulator columns p and q.
fn rotate_columns(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

/// Sorts by descending eigenvalue and packages the result. `d[i]` is the
/// eigenvalue whose eigenvector is column `i` of `v`.
pub(crate) fn collect_sorted(d: &[f64], v: Matrix) -> SymmetricEigen {
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("NaN eigenvalue"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let eigenvectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

/// [`collect_sorted`] reading the eigenvalues off a (numerically)
/// diagonalized matrix.
fn collect_diagonal(m: &Matrix, v: Matrix) -> SymmetricEigen {
    let d: Vec<f64> = (0..m.rows()).map(|i| m[(i, i)]).collect();
    collect_sorted(&d, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.eigenvalues.len();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.eigenvalues[i];
        }
        e.eigenvectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.eigenvectors.transposed())
            .unwrap()
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn reconstruction_matches_input() {
        // A covariance-like matrix: exponential decay off the diagonal.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-d / 4.0).exp()
        });
        let e = symmetric_eigen(&a).unwrap();
        assert!(reconstruct(&e).max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.eigenvectors.transposed().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(n)).unwrap() < 1e-10);
    }

    #[test]
    fn positive_semidefinite_covariance_has_nonnegative_spectrum() {
        // Exponential-decay correlation on a 4x4 grid of points (16 vars).
        let pts: Vec<(f64, f64)> = (0..16).map(|k| ((k % 4) as f64, (k / 4) as f64)).collect();
        let a = Matrix::from_fn(16, 16, |i, j| {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            (-(dx * dx + dy * dy).sqrt() / 3.0).exp()
        });
        let e = symmetric_eigen(&a).unwrap();
        for &lam in &e.eigenvalues {
            assert!(lam > -1e-10, "negative eigenvalue {lam}");
        }
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen(&a),
            Err(MathError::NotSymmetric { .. })
        ));
        assert!(matches!(
            symmetric_eigen_jacobi(&a),
            Err(MathError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn jacobi_oracle_reconstructs_and_matches_default_spectrum() {
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-d / 4.0).exp()
        });
        let jac = symmetric_eigen_jacobi(&a).unwrap();
        assert!(reconstruct(&jac).max_abs_diff(&a).unwrap() < 1e-9);
        let ql = symmetric_eigen(&a).unwrap();
        for (x, y) in ql.eigenvalues.iter().zip(&jac.eigenvalues) {
            assert!((x - y).abs() < 1e-9 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[7.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0]);
        assert_eq!(e.eigenvectors[(0, 0)].abs(), 1.0);
    }
}
