//! Linear-algebra and Gaussian-statistics substrate for hierarchical SSTA.
//!
//! This crate provides the numerical foundation used by the statistical
//! static timing analysis engine in `ssta-core`:
//!
//! * [`Matrix`] — a small dense row-major matrix with the operations needed
//!   for covariance handling (products, transposes, sub-matrices).
//! * [`cholesky`] — Cholesky factorization, used to validate covariance
//!   matrices and to sample correlated Gaussians in tests.
//! * [`eigen`] / [`tridiag`] — symmetric eigensolvers: a fast Householder
//!   tridiagonalization + implicit-shift QL solver (the default behind
//!   [`eigen::symmetric_eigen`]) and the cyclic Jacobi method kept as a
//!   reference oracle ([`eigen::symmetric_eigen_jacobi`]); design-level
//!   covariance matrices grow with instance count, so the eigensolve is
//!   the top-level assembly's hottest kernel.
//! * [`pca`] — principal component analysis built on the eigensolver,
//!   producing the `correlated = T·z` transform (with unit-variance `z`)
//!   and its whitening inverse that the variable-replacement step of
//!   hierarchical SSTA needs.
//! * [`gaussian`] — the standard normal pdf/cdf/quantile and Clark's
//!   moment-matching formulas for `max` of two jointly Gaussian variables
//!   (Clark, Operations Research 1961), the computational kernel of
//!   block-based SSTA.
//! * [`stats`] — streaming summaries, histograms, empirical distributions
//!   and Kolmogorov–Smirnov distances used to compare analytical SSTA
//!   results against Monte Carlo ground truth.
//! * [`parallel`] — deterministic fork-join helpers (index-ordered
//!   results, bit-identical for every worker count) shared by the
//!   levelized timing propagation, the design-level assembly and the
//!   engine pipeline.
//! * [`rng`] — seedable standard-normal sampling helpers.
//! * [`codec`] — varint/byte-stream primitives for the deterministic
//!   binary model codec (`ssta-core` builds the model layout on top;
//!   the engine's store wraps it in the versioned SSTM envelope).
//!
//! # Example
//!
//! ```
//! use ssta_math::{Matrix, PcaBasis, PcaOptions};
//!
//! # fn main() -> Result<(), ssta_math::MathError> {
//! // A 2x2 covariance matrix with correlation 0.8.
//! let cov = Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]])?;
//! let pca = PcaBasis::from_covariance(&cov, PcaOptions::default())?;
//! // The PCA transform reconstructs the covariance: T Tᵀ = C.
//! let reconstructed = pca.transform().matmul(&pca.transform().transposed())?;
//! assert!(reconstructed.max_abs_diff(&cov)? < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;

pub mod cholesky;
pub mod codec;
pub mod digest;
pub mod eigen;
pub mod gaussian;
pub mod parallel;
pub mod pca;
pub mod rng;
pub mod stats;
pub mod tridiag;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use digest::{sha256, Sha256};
pub use error::MathError;
pub use gaussian::{clark_max, normal_cdf, normal_pdf, normal_quantile, MaxMoments};
pub use matrix::Matrix;
pub use pca::{PcaBasis, PcaOptions};
pub use stats::{EmpiricalDist, Histogram, Summary};
