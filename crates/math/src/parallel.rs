//! Deterministic fork-join helpers shared by the timing substrate
//! (levelized propagation), the design-level assembly and the engine's
//! pipeline.
//!
//! Everything here preserves the repo's bit-exactness invariant: results
//! are returned in index order and each index's computation is
//! independent, so any thread count (including 1) produces bit-identical
//! output. Callers split one thread budget across fan-out levels (see
//! the engine's batch scheduler) instead of nesting unbounded pools.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a thread-count option: `0` means available parallelism,
/// anything else is taken literally (`1` forces the serial path).
pub fn effective_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
        n => n,
    }
}

/// Runs `run(i)` for `i in 0..n` across up to `workers` crossbeam scoped
/// threads, returning results in index order. `workers <= 1` runs inline.
/// Work is distributed by an atomic cursor, so uneven per-index cost
/// (e.g. upper-triangle covariance rows) balances automatically; the
/// index order of results (and therefore every fold over them) is
/// deterministic regardless of scheduling.
pub fn parallel_indexed<T, F>(n: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(n);
    if workers <= 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = run(i);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    })
    .expect("worker panicked");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every index ran")
        })
        .collect()
}

/// [`parallel_indexed`] over fallible work: runs every index, then
/// returns the first error in *index* order (not completion order), so
/// failures are as deterministic as successes.
///
/// # Errors
///
/// The lowest-index `Err` produced by `run`.
pub fn try_parallel_indexed<T, E, F>(n: usize, workers: usize, run: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    parallel_indexed(n, workers, run).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        let want: Vec<usize> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 200] {
            let got = parallel_indexed(97, workers, |i| i * i);
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn zero_items_yield_empty() {
        let got: Vec<usize> = parallel_indexed(0, 8, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn try_variant_reports_first_error_by_index() {
        let r: Result<Vec<usize>, usize> =
            try_parallel_indexed(10, 4, |i| if i % 3 == 2 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(2));
        let ok: Result<Vec<usize>, usize> = try_parallel_indexed(10, 4, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
