//! Cooperative cancellation for long-running analyses.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between the
//! party that wants work stopped (a serving front-end whose client went
//! away, a deadline that expired) and the code doing the work (the
//! engine pipeline, which polls the token at stage checkpoints). Like
//! the helpers in [`parallel`](crate::parallel), the token is purely
//! cooperative: it never interrupts a computation mid-kernel, it only
//! makes the *next* checkpoint return [`Cancelled`] — so results that
//! do complete remain bit-deterministic, and shared work (a
//! single-flight extraction other requests wait on) is never killed
//! under a waiter.
//!
//! Tokens optionally carry a **deadline**: a fixed instant after which
//! [`is_cancelled`](CancelToken::is_cancelled) reports `true` without
//! anyone calling [`cancel`](CancelToken::cancel). This is how a
//! serving layer turns a per-request latency budget into an automatic
//! mid-pipeline stop instead of CPU burned on an answer nobody will
//! read.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The error a cancelled checkpoint reports.
///
/// Deliberately payload-free: the party that cancelled knows why; the
/// worker only needs to unwind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared, cooperative cancellation handle.
///
/// Cloning is cheap and every clone observes the same state: one side
/// calls [`cancel`](Self::cancel) (or lets the deadline pass), the
/// other polls [`checkpoint`](Self::checkpoint) between units of work.
///
/// # Example
///
/// ```
/// use ssta_core::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(token.checkpoint().is_ok());
/// token.cancel();
/// assert!(token.checkpoint().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is
    /// called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally cancels itself once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that cancels itself `budget` from now.
    pub fn with_timeout(budget: Duration) -> Self {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested or the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The token's deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` when the token has no
    /// deadline; `Some(ZERO)` once it passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The cooperative stop point: `Ok(())` to keep working,
    /// [`Err(Cancelled)`](Cancelled) to unwind.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] iff [`is_cancelled`](Self::is_cancelled).
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.checkpoint().is_ok());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn deadline_expires_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));

        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().expect("has deadline") > Duration::from_secs(3500));
    }

    #[test]
    fn explicit_cancel_beats_a_future_deadline() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        t.cancel();
        assert!(t.is_cancelled());
    }
}
