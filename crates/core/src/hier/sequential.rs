//! Design-level sequential timing: arrival propagation through registered
//! module boundaries, stage by stage.
//!
//! A registered design is a hierarchical [`Design`] whose instances carry
//! a [`SequentialModel`](crate::extract::SequentialModel) interface (see
//! [`extract_registered`](crate::extract::extract_registered)). At design
//! level a registered instance is *opaque behind its registers*: data
//! arriving at its input ports is captured by the input register bank —
//! it never races through to the outputs within the same cycle — and its
//! outputs launch fresh from the clock edge. That boundary makes the
//! analysis per-stage:
//!
//! * each registered instance contributes one **capture sink** per input
//!   port (arrival there is checked against `T − setup`) and one
//!   **launch source** per output port, seeded with the model's
//!   clock-to-output arc;
//! * combinational instances (no sequential interface) flatten exactly as
//!   in the purely combinational analysis and simply extend the paths
//!   between register banks;
//! * all constraint arcs are rewritten into the design variable space by
//!   the same independent-variable replacement the edge delays get, so
//!   setup checks correlate correctly with the paths feeding them.
//!
//! Early (hold) analysis reuses the propagation engine through the
//! negation trick: negate every edge delay and every source seed, run the
//! late (max) propagation, negate the result — a statistical min
//! propagation without a second engine.

use crate::canonical::CanonicalForm;
use crate::hier::analysis::{build_variable_space, CorrelationMode, PhaseTimings};
use crate::hier::design::Design;
use crate::parallel::effective_threads;
use crate::CoreError;
use ssta_timing::{levels, LevelSchedule, TimingGraph, VertexId};
use std::time::Instant;

/// Options for [`analyze_sequential`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialAnalyzeOptions {
    /// Clock period `T` in ps — the budget every register-to-register
    /// stage is checked against.
    pub clock_period_ps: f64,
    /// How inter-module local correlation is handled (same semantics as
    /// the combinational analysis).
    pub mode: CorrelationMode,
    /// Worker threads for assembly and propagation; `0` uses the
    /// available parallelism. Bit-identical results for every count.
    pub threads: usize,
}

impl SequentialAnalyzeOptions {
    /// Options for a given clock period with the paper's proposed
    /// correlation mode and all available threads.
    pub fn with_period(clock_period_ps: f64) -> Self {
        SequentialAnalyzeOptions {
            clock_period_ps,
            mode: CorrelationMode::Proposed,
            threads: 0,
        }
    }
}

impl Default for SequentialAnalyzeOptions {
    /// A 1 ns clock, proposed correlation mode, all available threads.
    fn default() -> Self {
        SequentialAnalyzeOptions::with_period(1000.0)
    }
}

/// Timing of one pipeline stage — the capture checks at one registered
/// instance's input bank.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Instance name of the registered module whose registers capture
    /// this stage's paths.
    pub instance: String,
    /// Number of capture (input) ports checked.
    pub n_capture_ports: usize,
    /// Latest data arrival over all capture ports (statistical max).
    pub capture_arrival: CanonicalForm,
    /// Smallest clock period this stage supports: statistical max over
    /// ports of `arrival + setup`.
    pub required_period: CanonicalForm,
    /// Setup slack at the analyzed period: `T − required_period`.
    pub setup_slack: CanonicalForm,
    /// Hold slack: statistical min over ports of
    /// `early_arrival − hold`; `None` when the model ships no hold arcs.
    /// Stages fed directly by design inputs (arrival 0) legitimately
    /// report negative hold slack — primary-input timing is outside the
    /// model.
    pub hold_slack: Option<CanonicalForm>,
}

/// The result of one design-level sequential analysis.
#[derive(Debug, Clone)]
pub struct SequentialTiming {
    /// The correlation mode that produced this result.
    pub mode: CorrelationMode,
    /// The analyzed clock period (ps).
    pub clock_period_ps: f64,
    /// Per-stage capture statistics, in instance order (registered
    /// instances only).
    pub stages: Vec<StageTiming>,
    /// Smallest clock period the design supports: statistical max over
    /// stages of `required_period`.
    pub min_period: CanonicalForm,
    /// Worst (smallest) setup slack over all stages at the analyzed
    /// period.
    pub worst_setup_slack: CanonicalForm,
    /// Worst (smallest) hold slack over stages that carry hold arcs;
    /// `None` if no stage does.
    pub worst_hold_slack: Option<CanonicalForm>,
    /// Total local components in the design variable space.
    pub n_local_components: usize,
    /// Wall-clock analysis time in seconds.
    pub elapsed_seconds: f64,
    /// Per-phase wall-clock breakdown (propagate covers both the late
    /// and the early pass).
    pub phases: PhaseTimings,
}

/// One registered instance's capture bookkeeping inside the assembled
/// graph.
struct StagePorts {
    instance: usize,
    /// Capture vertex per input port.
    captures: Vec<VertexId>,
    /// Setup arc per input port, rewritten into the design space.
    setup: Vec<Option<CanonicalForm>>,
    /// Hold arc per input port, rewritten into the design space.
    hold: Vec<Option<CanonicalForm>>,
}

/// Analyzes a registered design: propagates arrival times through
/// registered module boundaries stage by stage and reports per-stage
/// slack and required-period statistics.
///
/// At least one instance must carry a sequential interface, every
/// registered instance must share one clock pin (single clock domain),
/// and every registered instance needs a launch arc per output port and
/// at least one setup arc — the shape
/// [`extract_registered`](crate::extract::extract_registered) and the SDF
/// importer both produce.
///
/// # Errors
///
/// Returns [`CoreError::Incompatible`] for interface violations above,
/// and propagates partition/PCA/graph errors.
pub fn analyze_sequential(
    design: &Design,
    options: &SequentialAnalyzeOptions,
) -> Result<SequentialTiming, CoreError> {
    let started = Instant::now();
    let threads = effective_threads(options.threads);
    check_interfaces(design)?;

    let (design_layout, transforms, mut phases) =
        build_variable_space(design, options.mode, threads, None)?;
    let n_globals = design.config().parameters.len();
    let n_locals = design_layout.n_locals();
    let zero = || CanonicalForm::constant(0.0, n_globals, n_locals);

    // Assemble the design graph with register-aware instance expansion.
    // The late and early graphs share one structure (vertices and edges
    // are added in lockstep; only delay signs differ), so one level
    // schedule serves both propagations.
    let replace_started = Instant::now();
    let mut graph: TimingGraph<CanonicalForm> = TimingGraph::new();
    let mut neg = TimingGraph::new();
    let mut pi_vertices = Vec::with_capacity(design.pi_bindings().len());
    for _ in design.pi_bindings() {
        pi_vertices.push(graph.add_input());
        neg.add_input();
    }

    let mut sources: Vec<(VertexId, CanonicalForm)> = Vec::new();
    let mut stages: Vec<StagePorts> = Vec::new();
    let mut in_ports: Vec<Vec<VertexId>> = Vec::with_capacity(design.instances().len());
    let mut out_ports: Vec<Vec<VertexId>> = Vec::with_capacity(design.instances().len());
    for (idx, inst) in design.instances().iter().enumerate() {
        let model = &*inst.model;
        let rewrite = |form: &CanonicalForm| -> Result<CanonicalForm, CoreError> {
            transforms[idx].apply(form, model.layout(), &design_layout)
        };
        if let Some(seq) = model.sequential() {
            // Opaque registered instance: capture sinks + launch sources,
            // no internal edges.
            let captures: Vec<VertexId> = (0..model.n_inputs())
                .map(|_| {
                    neg.add_vertex();
                    graph.add_vertex()
                })
                .collect();
            let launches: Vec<VertexId> = (0..model.n_outputs())
                .map(|_| {
                    neg.add_vertex();
                    graph.add_vertex()
                })
                .collect();
            for (j, &v) in launches.iter().enumerate() {
                let arc = seq.launch_of(j).ok_or_else(|| CoreError::Incompatible {
                    reason: format!(
                        "registered model `{}` has no launch arc for output port {j}",
                        model.name()
                    ),
                })?;
                sources.push((v, rewrite(arc)?));
            }
            stages.push(StagePorts {
                instance: idx,
                captures: captures.clone(),
                setup: (0..model.n_inputs())
                    .map(|p| seq.setup_of(p).map(&rewrite).transpose())
                    .collect::<Result<_, _>>()?,
                hold: (0..model.n_inputs())
                    .map(|p| seq.hold_of(p).map(&rewrite).transpose())
                    .collect::<Result<_, _>>()?,
            });
            in_ports.push(captures);
            out_ports.push(launches);
        } else {
            // Combinational instance: flatten as in the combinational
            // analysis.
            let mg = model.graph();
            let mut map: Vec<Option<VertexId>> = vec![None; mg.vertex_bound()];
            for v in mg.vertices() {
                neg.add_vertex();
                map[v.0 as usize] = Some(graph.add_vertex());
            }
            for (_, e) in mg.edges_iter() {
                let from = map[e.from.0 as usize].expect("live endpoint");
                let to = map[e.to.0 as usize].expect("live endpoint");
                let delay = rewrite(&e.delay)?;
                neg.add_edge(from, to, delay.negated());
                graph.add_edge(from, to, delay);
            }
            in_ports.push(
                mg.inputs()
                    .iter()
                    .map(|&v| map[v.0 as usize].expect("input is live"))
                    .collect(),
            );
            out_ports.push(
                mg.outputs()
                    .iter()
                    .map(|&v| map[v.0 as usize].expect("output is live"))
                    .collect(),
            );
        }
    }

    // Design PIs → instance inputs; inter-module wires; design POs.
    for (pi, targets) in design.pi_bindings().iter().enumerate() {
        for &(inst, port) in targets {
            neg.add_edge(pi_vertices[pi], in_ports[inst][port], zero());
            graph.add_edge(pi_vertices[pi], in_ports[inst][port], zero());
        }
    }
    for c in design.connections() {
        let wire = CanonicalForm::constant(c.wire_delay_ps, n_globals, n_locals);
        let (from, to) = (out_ports[c.from.0][c.from.1], in_ports[c.to.0][c.to.1]);
        neg.add_edge(from, to, wire.negated());
        graph.add_edge(from, to, wire);
    }
    for &(inst, port) in design.po_sources() {
        neg.mark_output(out_ports[inst][port]);
        graph.mark_output(out_ports[inst][port]);
    }
    // Design PIs launch at the clock edge with zero delay.
    for &v in &pi_vertices {
        sources.push((v, zero()));
    }
    phases.replace_seconds += replace_started.elapsed().as_secs_f64();

    // Late pass (setup) and early pass (hold, via negation).
    let propagate_started = Instant::now();
    let schedule = LevelSchedule::build(&graph)?;
    let late = levels::forward(&graph, &schedule, &sources, threads)?;
    let neg_sources: Vec<(VertexId, CanonicalForm)> =
        sources.iter().map(|(v, f)| (*v, f.negated())).collect();
    let early_neg = levels::forward(&neg, &schedule, &neg_sources, threads)?;
    phases.propagate_seconds = propagate_started.elapsed().as_secs_f64();

    // Per-stage capture statistics.
    let missing = || CoreError::Timing(ssta_timing::TimingError::NoPath);
    let mut stage_timings = Vec::with_capacity(stages.len());
    for stage in &stages {
        let inst = &design.instances()[stage.instance];
        let mut capture_arrival: Option<CanonicalForm> = None;
        let mut required: Option<CanonicalForm> = None;
        let mut hold_slack: Option<CanonicalForm> = None;
        for (p, &v) in stage.captures.iter().enumerate() {
            let arrival = late[v.0 as usize].as_ref().ok_or_else(missing)?;
            capture_arrival = Some(fold(capture_arrival, arrival, CanonicalForm::maximum));
            if let Some(setup) = &stage.setup[p] {
                required = Some(fold(required, &arrival.sum(setup), CanonicalForm::maximum));
            }
            if let Some(hold) = &stage.hold[p] {
                let early = early_neg[v.0 as usize]
                    .as_ref()
                    .ok_or_else(missing)?
                    .negated();
                hold_slack = Some(fold(
                    hold_slack,
                    &early.sum(&hold.negated()),
                    CanonicalForm::minimum,
                ));
            }
        }
        let required = required.ok_or_else(|| CoreError::Incompatible {
            reason: format!(
                "registered model `{}` carries no setup arcs",
                inst.model.name()
            ),
        })?;
        let period = CanonicalForm::constant(options.clock_period_ps, n_globals, n_locals);
        stage_timings.push(StageTiming {
            instance: inst.name.clone(),
            n_capture_ports: stage.captures.len(),
            capture_arrival: capture_arrival.expect("registered instance has inputs"),
            setup_slack: period.sum(&required.negated()),
            required_period: required,
            hold_slack,
        });
    }

    let min_period = stage_timings
        .iter()
        .skip(1)
        .fold(stage_timings[0].required_period.clone(), |acc, s| {
            acc.maximum(&s.required_period)
        });
    let worst_setup_slack = stage_timings
        .iter()
        .skip(1)
        .fold(stage_timings[0].setup_slack.clone(), |acc, s| {
            acc.minimum(&s.setup_slack)
        });
    let worst_hold_slack = stage_timings
        .iter()
        .filter_map(|s| s.hold_slack.as_ref())
        .fold(None, |acc, h| Some(fold(acc, h, CanonicalForm::minimum)));

    Ok(SequentialTiming {
        mode: options.mode,
        clock_period_ps: options.clock_period_ps,
        stages: stage_timings,
        min_period,
        worst_setup_slack,
        worst_hold_slack,
        n_local_components: n_locals,
        elapsed_seconds: started.elapsed().as_secs_f64(),
        phases,
    })
}

/// Folds `next` into an optional accumulator with `op`.
fn fold(
    acc: Option<CanonicalForm>,
    next: &CanonicalForm,
    op: fn(&CanonicalForm, &CanonicalForm) -> CanonicalForm,
) -> CanonicalForm {
    match acc {
        Some(prev) => op(&prev, next),
        None => next.clone(),
    }
}

/// Structural checks before assembly: at least one registered instance,
/// one shared clock pin.
fn check_interfaces(design: &Design) -> Result<(), CoreError> {
    let mut clock: Option<(&str, &str)> = None;
    for inst in design.instances() {
        if let Some(seq) = inst.model.sequential() {
            match clock {
                None => clock = Some((inst.model.name(), &seq.clock_pin)),
                Some((first, pin)) if pin != seq.clock_pin => {
                    return Err(CoreError::Incompatible {
                        reason: format!(
                            "mixed clock pins: model `{first}` uses `{pin}`, \
                             model `{}` uses `{}` (single clock domain required)",
                            inst.model.name(),
                            seq.clock_pin
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }
    if clock.is_none() {
        return Err(CoreError::Incompatible {
            reason: "sequential analysis needs at least one registered instance".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_registered, ExtractOptions};
    use crate::hier::design::DesignBuilder;
    use crate::module::ModuleContext;
    use crate::params::SstaConfig;
    use ssta_netlist::{generators, DieRect};
    use std::sync::Arc;

    /// A 3-stage registered pipeline of 4-bit adders.
    fn pipeline_design(options: &ExtractOptions) -> Design {
        let stages = generators::registered_pipeline(&["rca4", "rca4", "rca4"], "DFF").unwrap();
        let config = SstaConfig::paper();
        let mut models = Vec::new();
        for stage in &stages {
            let ctx = Arc::new(ModuleContext::characterize(stage.core().clone(), &config).unwrap());
            let model = Arc::new(extract_registered(&ctx, stage.register(), options).unwrap());
            models.push((ctx, model));
        }
        let (mw, mh) = models[0].1.geometry().extent_um();
        let die = DieRect {
            width: mw * stages.len() as f64 + 100.0,
            height: mh + 100.0,
        };
        let mut b = DesignBuilder::new("pipe3", die, config);
        let mut ids = Vec::new();
        for (k, (ctx, model)) in models.iter().enumerate() {
            let id = b
                .add_instance(
                    format!("s{k}"),
                    model.clone(),
                    Some(ctx.clone()),
                    (mw * k as f64, 0.0),
                )
                .unwrap();
            ids.push(id);
        }
        // Stage k outputs feed stage k+1 register D pins round-robin.
        for w in ids.windows(2) {
            let n_out = models[0].1.n_outputs();
            for p in 0..models[0].1.n_inputs() {
                b.connect(w[0], p % n_out, w[1], p, 0.0).unwrap();
            }
        }
        for p in 0..models[0].1.n_inputs() {
            b.expose_input(vec![(ids[0], p)]).unwrap();
        }
        for j in 0..models[0].1.n_outputs() {
            b.expose_output(*ids.last().unwrap(), j).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn three_stage_pipeline_reports_per_stage_slack() {
        let d = pipeline_design(&ExtractOptions::default());
        let t = analyze_sequential(&d, &SequentialAnalyzeOptions::with_period(1500.0)).unwrap();
        assert_eq!(t.stages.len(), 3);
        // Stage 0 captures straight from design PIs: arrival 0.
        assert!(t.stages[0].capture_arrival.mean().abs() < 1e-9);
        // Stages 1, 2 capture after clk→q + adder core: strictly later.
        for s in &t.stages[1..] {
            assert!(
                s.capture_arrival.mean() > 50.0,
                "{}",
                s.capture_arrival.mean()
            );
            assert!(s.capture_arrival.std_dev() > 0.0);
        }
        // Slack + required period reconstruct the clock period.
        for s in &t.stages {
            assert!(
                (s.setup_slack.mean() + s.required_period.mean() - 1500.0).abs() < 1e-9,
                "slack/required inconsistent"
            );
        }
        // The pipeline meets 1.5 ns comfortably.
        assert!(t.worst_setup_slack.mean() > 0.0);
        assert!(t.min_period.mean() < 1500.0);
        // Register-to-register hold is met (clk→q exceeds hold for DFF);
        // stage 0 is PI-fed so its hold slack is negative by convention.
        assert!(t.stages[1].hold_slack.as_ref().unwrap().mean() > 0.0);
        assert!(t.stages[0].hold_slack.as_ref().unwrap().mean() < 0.0);
    }

    #[test]
    fn min_period_dominates_every_stage() {
        let d = pipeline_design(&ExtractOptions::default());
        let t = analyze_sequential(&d, &SequentialAnalyzeOptions::default()).unwrap();
        for s in &t.stages {
            assert!(t.min_period.mean() >= s.required_period.mean() - 1e-9);
        }
        // 3σ quantile of min period is a sane sign-off number.
        assert!(t.min_period.quantile(0.99865) > t.min_period.mean());
    }

    #[test]
    fn threading_is_bit_identical() {
        let d = pipeline_design(&ExtractOptions::default());
        let serial = analyze_sequential(
            &d,
            &SequentialAnalyzeOptions {
                threads: 1,
                ..SequentialAnalyzeOptions::default()
            },
        )
        .unwrap();
        for threads in [0, 3] {
            let par = analyze_sequential(
                &d,
                &SequentialAnalyzeOptions {
                    threads,
                    ..SequentialAnalyzeOptions::default()
                },
            )
            .unwrap();
            assert_eq!(par.min_period, serial.min_period);
            for (a, b) in par.stages.iter().zip(&serial.stages) {
                assert_eq!(a.setup_slack, b.setup_slack);
                assert_eq!(a.hold_slack, b.hold_slack);
            }
        }
    }

    #[test]
    fn compressed_models_track_exact_models() {
        let exact = analyze_sequential(
            &pipeline_design(&ExtractOptions::paper_exact()),
            &SequentialAnalyzeOptions::default(),
        )
        .unwrap();
        let compressed = analyze_sequential(
            &pipeline_design(&ExtractOptions::default()),
            &SequentialAnalyzeOptions::default(),
        )
        .unwrap();
        for (a, b) in exact.stages.iter().zip(&compressed.stages) {
            let rel = (a.required_period.mean() - b.required_period.mean()).abs()
                / a.required_period.mean();
            assert!(rel < 0.02, "stage {} drifted {rel}", a.instance);
        }
    }

    #[test]
    fn rejects_purely_combinational_designs() {
        let stages = generators::registered_pipeline(&["rca4"], "DFF").unwrap();
        let config = SstaConfig::paper();
        let ctx = Arc::new(ModuleContext::characterize(stages[0].core().clone(), &config).unwrap());
        let model = Arc::new(crate::extract::extract(&ctx, &ExtractOptions::default()).unwrap());
        let (mw, mh) = model.geometry().extent_um();
        let die = DieRect {
            width: mw + 100.0,
            height: mh + 100.0,
        };
        let mut b = DesignBuilder::new("comb", die, config);
        let u = b
            .add_instance("u0", model.clone(), Some(ctx), (0.0, 0.0))
            .unwrap();
        for p in 0..model.n_inputs() {
            b.expose_input(vec![(u, p)]).unwrap();
        }
        b.expose_output(u, 0).unwrap();
        let d = b.finish().unwrap();
        let err = analyze_sequential(&d, &SequentialAnalyzeOptions::default()).unwrap_err();
        assert!(err.to_string().contains("at least one registered instance"));
    }
}
