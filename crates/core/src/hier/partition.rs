//! Heterogeneous grid partition of the top die (Fig. 4 of the paper).
//!
//! Module-covered die area keeps each module's characterization grids
//! (translated to the module's placement); the remaining area is tiled
//! with the default grid. Leftover grids may be clipped by module rects
//! and thus non-rectangular; like the paper, we only ever use a grid's
//! *location* (its tile center) for correlation distances, so clipping
//! costs no modelling accuracy beyond the grid quantization itself.

use crate::spatial::GridGeometry;
use serde::{Deserialize, Serialize};
use ssta_netlist::DieRect;

/// The design-level grid set: per-instance grid blocks (in module grid
/// order) followed by top-level leftover grids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPartition {
    centers: Vec<(f64, f64)>,
    instance_offsets: Vec<usize>,
    instance_counts: Vec<usize>,
    n_top_grids: usize,
}

impl DesignPartition {
    /// Builds the partition from the translated module geometries and the
    /// default grid pitch.
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not positive or the die is empty.
    pub fn build(die: DieRect, instance_geometries: &[GridGeometry], default_pitch: f64) -> Self {
        assert!(default_pitch > 0.0, "default grid pitch must be positive");
        assert!(die.width > 0.0 && die.height > 0.0, "die must be non-empty");

        let mut centers = Vec::new();
        let mut instance_offsets = Vec::with_capacity(instance_geometries.len());
        let mut instance_counts = Vec::with_capacity(instance_geometries.len());
        for geom in instance_geometries {
            instance_offsets.push(centers.len());
            instance_counts.push(geom.n_grids());
            centers.extend(geom.centers());
        }

        // Leftover area: default tiles whose center no module rect covers.
        let nx = (die.width / default_pitch).ceil() as usize;
        let ny = (die.height / default_pitch).ceil() as usize;
        let mut n_top = 0;
        for gy in 0..ny {
            for gx in 0..nx {
                let c = (
                    (gx as f64 + 0.5) * default_pitch,
                    (gy as f64 + 0.5) * default_pitch,
                );
                let covered = instance_geometries.iter().any(|g| covers(g, c));
                if !covered {
                    centers.push(c);
                    n_top += 1;
                }
            }
        }
        DesignPartition {
            centers,
            instance_offsets,
            instance_counts,
            n_top_grids: n_top,
        }
    }

    /// All grid centers (instance blocks first, then top-level grids).
    pub fn centers(&self) -> &[(f64, f64)] {
        &self.centers
    }

    /// Total number of design grids.
    pub fn n_grids(&self) -> usize {
        self.centers.len()
    }

    /// Number of top-level (leftover) grids.
    pub fn n_top_grids(&self) -> usize {
        self.n_top_grids
    }

    /// Index range of instance `i`'s grids within [`centers`](Self::centers),
    /// matching the module's own grid order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn instance_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.instance_offsets[i];
        start..start + self.instance_counts[i]
    }
}

fn covers(g: &GridGeometry, (x, y): (f64, f64)) -> bool {
    let (ox, oy) = g.origin();
    let w = g.nx() as f64 * g.pitch();
    let h = g.ny() as f64 * g.pitch();
    x >= ox && x < ox + w && y >= oy && y < oy + h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die(w: f64, h: f64) -> DieRect {
        DieRect {
            width: w,
            height: h,
        }
    }

    fn module_geom(origin: (f64, f64), pitch: f64, side_um: f64) -> GridGeometry {
        GridGeometry::from_die(die(side_um, side_um), pitch).translated(origin.0, origin.1)
    }

    #[test]
    fn abutted_modules_cover_everything() {
        // Two 40x40 modules side by side on an 80x40 die: no leftover.
        let g1 = module_geom((0.0, 0.0), 20.0, 40.0);
        let g2 = module_geom((40.0, 0.0), 20.0, 40.0);
        let p = DesignPartition::build(die(80.0, 40.0), &[g1, g2], 20.0);
        assert_eq!(p.n_top_grids(), 0);
        assert_eq!(p.n_grids(), 8);
        assert_eq!(p.instance_range(0), 0..4);
        assert_eq!(p.instance_range(1), 4..8);
    }

    #[test]
    fn leftover_area_gets_default_grids() {
        // One 40x40 module on an 80x40 die: right half is leftover.
        let g1 = module_geom((0.0, 0.0), 20.0, 40.0);
        let p = DesignPartition::build(die(80.0, 40.0), &[g1], 20.0);
        assert_eq!(p.n_top_grids(), 4);
        assert_eq!(p.n_grids(), 8);
        // Leftover centers are in the right half.
        for &(x, _) in &p.centers()[4..] {
            assert!(x > 40.0);
        }
    }

    #[test]
    fn instance_grid_centers_match_module_geometry() {
        let g1 = module_geom((100.0, 50.0), 20.0, 40.0);
        let p = DesignPartition::build(die(200.0, 200.0), &[g1], 20.0);
        let range = p.instance_range(0);
        let want = g1.centers();
        assert_eq!(&p.centers()[range], &want[..]);
    }

    #[test]
    fn misaligned_module_still_partitions() {
        // Module origin not on the default grid lattice (the "module B"
        // case of Fig. 4).
        let g1 = module_geom((13.0, 7.0), 20.0, 40.0);
        let p = DesignPartition::build(die(100.0, 100.0), &[g1], 20.0);
        assert_eq!(p.instance_range(0).len(), 4);
        assert!(p.n_top_grids() > 0);
        // No top-level grid center falls inside the module rect.
        for &c in &p.centers()[4..] {
            assert!(!(c.0 >= 13.0 && c.0 < 53.0 && c.1 >= 7.0 && c.1 < 47.0));
        }
    }
}
