//! Hierarchical design description: placed timing-model instances wired
//! together, with design-level primary inputs and outputs.

use crate::extract::TimingModel;
use crate::module::ModuleContext;
use crate::params::SstaConfig;
use crate::spatial::GridGeometry;
use crate::CoreError;
use ssta_netlist::DieRect;
use std::sync::Arc;

/// One placed instance of a pre-characterized module.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name (e.g. `"mult_ne"`).
    pub name: String,
    /// The extracted timing model used for analysis.
    pub model: Arc<TimingModel>,
    /// The full characterized module, kept for Monte Carlo flattening.
    /// `None` for true black-box IP where only the model is available.
    pub context: Option<Arc<ModuleContext>>,
    /// Placement offset of the module origin, in µm.
    pub origin: (f64, f64),
}

/// A wire from an instance output port to an instance input port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Connection {
    /// `(instance, output port)` source.
    pub from: (usize, usize),
    /// `(instance, input port)` sink.
    pub to: (usize, usize),
    /// Wire delay in ps (deterministic; the paper's experiment abuts
    /// modules and uses direct connections).
    pub wire_delay_ps: f64,
}

/// A validated hierarchical design.
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    die: DieRect,
    config: SstaConfig,
    instances: Vec<Instance>,
    connections: Vec<Connection>,
    pi_bindings: Vec<Vec<(usize, usize)>>,
    po_sources: Vec<(usize, usize)>,
}

impl Design {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Top die rectangle.
    pub fn die(&self) -> DieRect {
        self.die
    }

    /// The analysis configuration (shared with every model).
    pub fn config(&self) -> &SstaConfig {
        &self.config
    }

    /// The placed instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Inter-module connections.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Per design primary input: the `(instance, input port)` sinks it
    /// drives.
    pub fn pi_bindings(&self) -> &[Vec<(usize, usize)>] {
        &self.pi_bindings
    }

    /// Per design primary output: the `(instance, output port)` source.
    pub fn po_sources(&self) -> &[(usize, usize)] {
        &self.po_sources
    }

    /// Each instance's grid geometry translated to its placement — the
    /// inputs of the heterogeneous partition.
    pub fn translated_geometries(&self) -> Vec<GridGeometry> {
        self.instances
            .iter()
            .map(|inst| {
                inst.model
                    .geometry()
                    .translated(inst.origin.0, inst.origin.1)
            })
            .collect()
    }
}

/// Incremental builder for [`Design`], validating on
/// [`finish`](DesignBuilder::finish).
#[derive(Debug)]
pub struct DesignBuilder {
    name: String,
    die: DieRect,
    config: SstaConfig,
    instances: Vec<Instance>,
    connections: Vec<Connection>,
    pi_bindings: Vec<Vec<(usize, usize)>>,
    po_sources: Vec<(usize, usize)>,
}

impl DesignBuilder {
    /// Starts a design on the given die under the given configuration.
    pub fn new(name: impl Into<String>, die: DieRect, config: SstaConfig) -> Self {
        DesignBuilder {
            name: name.into(),
            die,
            config,
            instances: Vec::new(),
            connections: Vec::new(),
            pi_bindings: Vec::new(),
            po_sources: Vec::new(),
        }
    }

    /// Places a model instance at `origin` and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Incompatible`] if the model was characterized
    /// under a different configuration, or [`CoreError::Config`] if the
    /// instance does not fit on the die.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        model: Arc<TimingModel>,
        context: Option<Arc<ModuleContext>>,
        origin: (f64, f64),
    ) -> Result<usize, CoreError> {
        model.check_compatible(&self.config)?;
        let (w, h) = model.geometry().extent_um();
        if origin.0 < 0.0
            || origin.1 < 0.0
            || origin.0 + w > self.die.width + 1e-9
            || origin.1 + h > self.die.height + 1e-9
        {
            return Err(CoreError::Config {
                reason: format!(
                    "instance at ({}, {}) with extent ({w}, {h}) exceeds the die",
                    origin.0, origin.1
                ),
            });
        }
        self.instances.push(Instance {
            name: name.into(),
            model,
            context,
            origin,
        });
        Ok(self.instances.len() - 1)
    }

    /// Wires instance `from`'s output port to instance `to`'s input port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for out-of-range ports or instances.
    pub fn connect(
        &mut self,
        from: usize,
        from_port: usize,
        to: usize,
        to_port: usize,
        wire_delay_ps: f64,
    ) -> Result<(), CoreError> {
        self.check_output(from, from_port)?;
        self.check_input(to, to_port)?;
        self.connections.push(Connection {
            from: (from, from_port),
            to: (to, to_port),
            wire_delay_ps,
        });
        Ok(())
    }

    /// Declares a design primary input driving the given instance input
    /// ports; returns the design PI index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for out-of-range targets.
    pub fn expose_input(&mut self, targets: Vec<(usize, usize)>) -> Result<usize, CoreError> {
        if targets.is_empty() {
            return Err(CoreError::Config {
                reason: "design input must drive at least one port".into(),
            });
        }
        for &(inst, port) in &targets {
            self.check_input(inst, port)?;
        }
        self.pi_bindings.push(targets);
        Ok(self.pi_bindings.len() - 1)
    }

    /// Declares a design primary output observing the given instance
    /// output port; returns the design PO index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for out-of-range sources.
    pub fn expose_output(&mut self, inst: usize, port: usize) -> Result<usize, CoreError> {
        self.check_output(inst, port)?;
        self.po_sources.push((inst, port));
        Ok(self.po_sources.len() - 1)
    }

    fn check_input(&self, inst: usize, port: usize) -> Result<(), CoreError> {
        let m = self.instances.get(inst).ok_or_else(|| CoreError::Config {
            reason: format!("instance {inst} does not exist"),
        })?;
        if port >= m.model.n_inputs() {
            return Err(CoreError::Config {
                reason: format!(
                    "input port {port} out of range for `{}` ({} inputs)",
                    m.name,
                    m.model.n_inputs()
                ),
            });
        }
        Ok(())
    }

    fn check_output(&self, inst: usize, port: usize) -> Result<(), CoreError> {
        let m = self.instances.get(inst).ok_or_else(|| CoreError::Config {
            reason: format!("instance {inst} does not exist"),
        })?;
        if port >= m.model.n_outputs() {
            return Err(CoreError::Config {
                reason: format!(
                    "output port {port} out of range for `{}` ({} outputs)",
                    m.name,
                    m.model.n_outputs()
                ),
            });
        }
        Ok(())
    }

    /// Validates and finalizes the design: every instance input port must
    /// be driven exactly once (by a PI or a connection), and at least one
    /// PO must exist.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] describing the first violation.
    pub fn finish(self) -> Result<Design, CoreError> {
        if self.instances.is_empty() || self.po_sources.is_empty() {
            return Err(CoreError::Config {
                reason: "design needs at least one instance and one output".into(),
            });
        }
        let mut driven: Vec<Vec<u32>> = self
            .instances
            .iter()
            .map(|i| vec![0; i.model.n_inputs()])
            .collect();
        for targets in &self.pi_bindings {
            for &(inst, port) in targets {
                driven[inst][port] += 1;
            }
        }
        for c in &self.connections {
            driven[c.to.0][c.to.1] += 1;
        }
        for (i, ports) in driven.iter().enumerate() {
            for (p, &count) in ports.iter().enumerate() {
                if count != 1 {
                    return Err(CoreError::Config {
                        reason: format!(
                            "input port {p} of instance `{}` driven {count} times (must be 1)",
                            self.instances[i].name
                        ),
                    });
                }
            }
        }
        Ok(Design {
            name: self.name,
            die: self.die,
            config: self.config,
            instances: self.instances,
            connections: self.connections,
            pi_bindings: self.pi_bindings,
            po_sources: self.po_sources,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use ssta_netlist::generators;

    fn model_and_ctx() -> (Arc<TimingModel>, Arc<ModuleContext>) {
        let n = generators::ripple_carry_adder(2).unwrap();
        let ctx = Arc::new(ModuleContext::characterize(n, &SstaConfig::paper()).unwrap());
        let model = Arc::new(extract(&ctx, &ExtractOptions::default()).unwrap());
        (model, ctx)
    }

    fn big_die() -> DieRect {
        DieRect {
            width: 1000.0,
            height: 1000.0,
        }
    }

    #[test]
    fn single_instance_design_builds() {
        let (model, ctx) = model_and_ctx();
        let mut b = DesignBuilder::new("d", big_die(), SstaConfig::paper());
        let i = b
            .add_instance("u0", model.clone(), Some(ctx), (0.0, 0.0))
            .unwrap();
        for k in 0..model.n_inputs() {
            b.expose_input(vec![(i, k)]).unwrap();
        }
        for k in 0..model.n_outputs() {
            b.expose_output(i, k).unwrap();
        }
        let d = b.finish().unwrap();
        assert_eq!(d.instances().len(), 1);
        assert_eq!(d.pi_bindings().len(), model.n_inputs());
    }

    #[test]
    fn undriven_input_is_rejected() {
        let (model, _) = model_and_ctx();
        let mut b = DesignBuilder::new("d", big_die(), SstaConfig::paper());
        let i = b
            .add_instance("u0", model.clone(), None, (0.0, 0.0))
            .unwrap();
        b.expose_output(i, 0).unwrap();
        // No PI bound: every input is undriven.
        assert!(matches!(b.finish(), Err(CoreError::Config { .. })));
    }

    #[test]
    fn doubly_driven_input_is_rejected() {
        let (model, _) = model_and_ctx();
        let mut b = DesignBuilder::new("d", big_die(), SstaConfig::paper());
        let i = b
            .add_instance("u0", model.clone(), None, (0.0, 0.0))
            .unwrap();
        for k in 0..model.n_inputs() {
            b.expose_input(vec![(i, k)]).unwrap();
        }
        b.expose_input(vec![(i, 0)]).unwrap(); // port 0 now driven twice
        b.expose_output(i, 0).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn out_of_die_instance_is_rejected() {
        let (model, _) = model_and_ctx();
        let mut b = DesignBuilder::new(
            "d",
            DieRect {
                width: 10.0,
                height: 10.0,
            },
            SstaConfig::paper(),
        );
        assert!(b.add_instance("u0", model, None, (5.0, 5.0)).is_err());
    }

    #[test]
    fn incompatible_model_is_rejected() {
        let (model, _) = model_and_ctx();
        let mut other = SstaConfig::paper();
        other.correlation.cutoff_grids = 3.0;
        let mut b = DesignBuilder::new("d", big_die(), other);
        assert!(matches!(
            b.add_instance("u0", model, None, (0.0, 0.0)),
            Err(CoreError::Incompatible { .. })
        ));
    }

    #[test]
    fn port_range_checks() {
        let (model, _) = model_and_ctx();
        let mut b = DesignBuilder::new("d", big_die(), SstaConfig::paper());
        let i = b
            .add_instance("u0", model.clone(), None, (0.0, 0.0))
            .unwrap();
        assert!(b.expose_input(vec![(i, 999)]).is_err());
        assert!(b.expose_output(i, 999).is_err());
        assert!(b.connect(i, 999, i, 0, 0.0).is_err());
        assert!(b.expose_input(vec![]).is_err());
    }
}
