//! Hierarchical statistical timing analysis at design level (Section V).
//!
//! A hierarchical design instantiates pre-characterized timing models at
//! placed offsets. The delays inside each model are expressed in *that
//! module's* independent PCA components — composing models naively would
//! treat different modules' local variation as independent and lose the
//! spatial correlation between abutting modules.
//!
//! The paper's fix, implemented here:
//!
//! 1. [`partition`] — partition the top die with *heterogeneous grids*:
//!    module-covered area keeps the module's own characterization grids
//!    (translated), leftover area gets the default grid;
//! 2. [`replace`] — run PCA over the design-level grid covariance and
//!    substitute each module's independent variables by design-level ones
//!    (`x = Aᵀ·Bₙ·xᵗ`, equation (19));
//! 3. [`analysis`] — propagate arrival times from design inputs to design
//!    outputs through the re-correlated model graphs.

pub mod analysis;
pub mod design;
pub mod partition;
pub mod replace;
pub mod sequential;

pub use analysis::{
    analyze, analyze_with, assemble_design_graph, assemble_design_graph_with_basis,
    propagate_assembled, AnalyzeOptions, AssembledDesign, CorrelationMode, DesignTiming,
    PhaseTimings,
};
pub use design::{Connection, Design, DesignBuilder, Instance};
pub use partition::DesignPartition;
pub use replace::{DesignVariables, InstanceReplacement};
pub use sequential::{analyze_sequential, SequentialAnalyzeOptions, SequentialTiming, StageTiming};
