//! Design-level arrival-time propagation (Fig. 5 of the paper).
//!
//! Two modes:
//!
//! * [`CorrelationMode::Proposed`] — the paper's method: heterogeneous
//!   partition, design-level PCA, and independent-variable replacement, so
//!   all instances share one design-level local variable set;
//! * [`CorrelationMode::GlobalOnly`] — the baseline the paper compares
//!   against: each instance keeps a private copy of its local variables
//!   (inter-module correlation carried by the global variables only).

use crate::canonical::CanonicalForm;
use crate::hier::design::Design;
use crate::hier::replace::{DesignVariables, InstanceReplacement};
use crate::parallel::{effective_threads, try_parallel_indexed};
use crate::params::VariableLayout;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use ssta_timing::{levels, LevelSchedule, TimingGraph, VertexId};
use std::fmt;
use std::time::Instant;

/// How inter-module local correlation is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationMode {
    /// Independent-variable replacement (the paper's method).
    Proposed,
    /// Private local variables per instance; only global variation is
    /// shared between modules.
    GlobalOnly,
}

/// Tuning knobs for [`analyze_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Worker threads for the parallel assembly phases (design covariance
    /// rows, per-instance replacement build and coefficient rewriting)
    /// and for the levelized wavefront propagation of step 4;
    /// `0` uses the available parallelism, `1` forces the serial path.
    /// Every thread count produces bit-identical results.
    pub threads: usize,
}

impl Default for AnalyzeOptions {
    /// Uses the available parallelism.
    fn default() -> Self {
        AnalyzeOptions { threads: 0 }
    }
}

/// Wall-clock seconds spent in each phase of one design-level analysis
/// (Fig. 5 steps plus the final propagation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Step 1 — heterogeneous partition of the top die.
    pub partition_seconds: f64,
    /// Step 2a — design-level grid covariance matrix.
    pub covariance_seconds: f64,
    /// Step 2b — its eigendecomposition (PCA).
    pub eigen_seconds: f64,
    /// Step 3 — building the per-instance replacement matrices and
    /// rewriting every edge delay into the design variable space.
    pub replace_seconds: f64,
    /// Step 4 — arrival-time propagation over the assembled graph.
    pub propagate_seconds: f64,
}

impl PhaseTimings {
    /// Sum over all phases.
    pub fn total_seconds(&self) -> f64 {
        self.partition_seconds
            + self.covariance_seconds
            + self.eigen_seconds
            + self.replace_seconds
            + self.propagate_seconds
    }

    /// Adds another analysis' phase times onto this one (batch
    /// aggregation).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.partition_seconds += other.partition_seconds;
        self.covariance_seconds += other.covariance_seconds;
        self.eigen_seconds += other.eigen_seconds;
        self.replace_seconds += other.replace_seconds;
        self.propagate_seconds += other.propagate_seconds;
    }
}

impl fmt::Display for PhaseTimings {
    /// Compact one-line breakdown in milliseconds, e.g.
    /// `partition 0.2 + covariance 1.4 + eigen 5.0 + replace 2.1 + propagate 0.7 ms`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partition {:.1} + covariance {:.1} + eigen {:.1} + replace {:.1} + propagate {:.1} ms",
            1e3 * self.partition_seconds,
            1e3 * self.covariance_seconds,
            1e3 * self.eigen_seconds,
            1e3 * self.replace_seconds,
            1e3 * self.propagate_seconds,
        )
    }
}

/// The result of one design-level analysis.
#[derive(Debug, Clone)]
pub struct DesignTiming {
    /// The analysis mode that produced this result.
    pub mode: CorrelationMode,
    /// Arrival time at each design primary output.
    pub po_arrivals: Vec<CanonicalForm>,
    /// The design delay: statistical max over all primary outputs.
    pub delay: CanonicalForm,
    /// Total local components in the design variable space.
    pub n_local_components: usize,
    /// Wall-clock analysis time in seconds (includes partition + PCA +
    /// replacement + propagation).
    pub elapsed_seconds: f64,
    /// Per-phase wall-clock breakdown of
    /// [`elapsed_seconds`](Self::elapsed_seconds).
    pub phases: PhaseTimings,
}

/// Analyzes a hierarchical design (steps 1–4 of Fig. 5) with default
/// options (all available threads; bit-identical to the serial path).
///
/// # Errors
///
/// Propagates partition/PCA/graph errors; returns
/// [`CoreError::Timing`]`(NoPath)` if no design output is reachable.
pub fn analyze(design: &Design, mode: CorrelationMode) -> Result<DesignTiming, CoreError> {
    analyze_with(design, mode, &AnalyzeOptions::default())
}

/// Analyzes a hierarchical design with explicit options.
///
/// The assembly phases fan out across `options.threads` workers: the
/// design covariance is filled by row blocks, and each instance's
/// replacement matrices + edge-delay rewrites are built independently.
/// Results are bit-identical for every thread count — each unit of work
/// is self-contained and joined in deterministic index order.
///
/// # Errors
///
/// Propagates partition/PCA/graph errors; returns
/// [`CoreError::Timing`]`(NoPath)` if no design output is reachable.
pub fn analyze_with(
    design: &Design,
    mode: CorrelationMode,
    options: &AnalyzeOptions,
) -> Result<DesignTiming, CoreError> {
    let started = Instant::now();
    let assembled = assemble_design_graph(design, mode, options)?;
    let schedule = LevelSchedule::build(&assembled.graph)?;
    let mut timing = propagate_assembled(&assembled, &schedule, options.threads)?;
    timing.elapsed_seconds = started.elapsed().as_secs_f64();
    Ok(timing)
}

/// Step 4 alone: propagates arrival times over an already-assembled
/// design graph using a prebuilt [`LevelSchedule`] — the reuse seam for
/// sweeps that amortize one assembly (and one schedule) across many
/// scenarios. [`analyze_with`] is [`assemble_design_graph`] + one
/// schedule build + this.
///
/// The returned timing's `phases` are the assembly's phases plus this
/// propagation; `elapsed_seconds` is their sum (callers owning the full
/// wall clock overwrite it).
///
/// # Errors
///
/// Returns [`CoreError::Timing`]`(StaleSchedule)` if the schedule does
/// not match the graph's shape, and `(NoPath)` if a design output is
/// unreachable.
pub fn propagate_assembled(
    assembled: &AssembledDesign,
    schedule: &LevelSchedule,
    threads: usize,
) -> Result<DesignTiming, CoreError> {
    let threads = effective_threads(threads);
    let mut phases = assembled.phases;
    let graph = &assembled.graph;

    // Levelized wavefronts, threaded within each level (bit-identical
    // to serial for any thread count).
    let propagate_started = Instant::now();
    let arrivals = levels::forward(graph, schedule, &assembled.sources, threads)?;
    let po_arrivals: Vec<CanonicalForm> = graph
        .outputs()
        .iter()
        .map(|&v| {
            arrivals[v.0 as usize]
                .clone()
                .ok_or(CoreError::Timing(ssta_timing::TimingError::NoPath))
        })
        .collect::<Result<_, _>>()?;
    let delay = po_arrivals
        .iter()
        .skip(1)
        .fold(po_arrivals[0].clone(), |acc, a| acc.maximum(a));
    phases.propagate_seconds = propagate_started.elapsed().as_secs_f64();

    Ok(DesignTiming {
        mode: assembled.mode,
        po_arrivals,
        delay,
        n_local_components: assembled.n_local_components,
        elapsed_seconds: phases.total_seconds(),
        phases,
    })
}

/// The assembled design-level timing graph (Fig. 5 steps 1–3) before
/// arrival-time propagation: the flattened instance graphs with every
/// edge delay rewritten into the design variable space, plus the
/// propagation sources (one zero form per design primary input).
///
/// Produced by [`assemble_design_graph`] for tooling that wants to run
/// or measure propagation engines directly (e.g. the perf harness'
/// push-vs-pull duel); [`analyze_with`] is this plus step 4.
#[derive(Debug, Clone)]
pub struct AssembledDesign {
    /// The analysis mode this graph was assembled for.
    pub mode: CorrelationMode,
    /// The design-level timing graph.
    pub graph: TimingGraph<CanonicalForm>,
    /// Propagation sources: `(input vertex, zero form)` per design PI.
    pub sources: Vec<(VertexId, CanonicalForm)>,
    /// Total local components in the design variable space.
    pub n_local_components: usize,
    /// Wall-clock breakdown of the assembly phases (propagate is 0).
    pub phases: PhaseTimings,
}

/// Builds the design-level timing graph without propagating (steps 1–3
/// of Fig. 5): partition, design PCA, per-instance variable replacement
/// and graph flattening, fanned out across `options.threads` workers.
///
/// # Errors
///
/// Propagates partition/PCA/graph errors.
pub fn assemble_design_graph(
    design: &Design,
    mode: CorrelationMode,
    options: &AnalyzeOptions,
) -> Result<AssembledDesign, CoreError> {
    assemble_design_graph_with_basis(design, mode, options, None)
}

/// [`assemble_design_graph`] with an optionally precomputed design
/// variable basis.
///
/// [`DesignVariables`] depend only on the die, the placed module
/// geometries and the config's correlation/grid/PCA settings — *not* on
/// parameter sigma magnitudes — so a sweep whose scenarios differ only
/// in sigma scaling can build the basis once (via
/// [`DesignVariables::build_profiled`]) and inject it here, skipping
/// steps 1–2 (partition, covariance, eigendecomposition) on every
/// subsequent assembly. Passing a basis built from *different* inputs
/// is a logic error and produces wrong correlations; callers own that
/// cache key. Ignored in [`CorrelationMode::GlobalOnly`], which never
/// builds a basis.
///
/// # Errors
///
/// Propagates partition/PCA/graph errors.
pub fn assemble_design_graph_with_basis(
    design: &Design,
    mode: CorrelationMode,
    options: &AnalyzeOptions,
    basis: Option<&DesignVariables>,
) -> Result<AssembledDesign, CoreError> {
    let threads = effective_threads(options.threads);
    let (design_layout, transforms, mut phases) =
        build_variable_space(design, mode, threads, basis)?;
    let n_globals = design.config().parameters.len();
    let n_locals = design_layout.n_locals();
    let zero = || CanonicalForm::constant(0.0, n_globals, n_locals);

    // Step 3 (hot half): rewrite every instance's edge delays into the
    // design variable space, one instance per work unit. Delays come back
    // in `edges_iter` order per instance, so the serial graph assembly
    // below consumes them deterministically. With one thread the rewrite
    // streams instance by instance inside the assembly loop instead
    // (same result, no all-instances delay buffer held at once).
    let instances = design.instances();
    let rewrite_instance = |idx: usize| -> Result<Vec<CanonicalForm>, CoreError> {
        let inst = &instances[idx];
        inst.model
            .graph()
            .edges_iter()
            .map(|(_, e)| transforms[idx].apply(&e.delay, inst.model.layout(), &design_layout))
            .collect()
    };
    let mut mapped_delays: Option<std::vec::IntoIter<Vec<CanonicalForm>>> = if threads > 1 {
        let replace_started = Instant::now();
        let all = try_parallel_indexed(instances.len(), threads, rewrite_instance)?;
        phases.replace_seconds += replace_started.elapsed().as_secs_f64();
        Some(all.into_iter())
    } else {
        None
    };

    // Build the design-level timing graph.
    let mut graph: TimingGraph<CanonicalForm> = TimingGraph::new();
    let mut pi_vertices = Vec::with_capacity(design.pi_bindings().len());
    for _ in design.pi_bindings() {
        pi_vertices.push(graph.add_input());
    }

    // Instantiate each model's graph.
    let mut in_ports: Vec<Vec<VertexId>> = Vec::with_capacity(design.instances().len());
    let mut out_ports: Vec<Vec<VertexId>> = Vec::with_capacity(design.instances().len());
    for (idx, inst) in design.instances().iter().enumerate() {
        let mg = inst.model.graph();
        let mut map: Vec<Option<VertexId>> = vec![None; mg.vertex_bound()];
        for v in mg.vertices() {
            map[v.0 as usize] = Some(graph.add_vertex());
        }
        let delays = match mapped_delays.as_mut() {
            Some(iter) => iter.next().expect("one delay block per instance"),
            None => {
                let replace_started = Instant::now();
                let block = rewrite_instance(idx)?;
                phases.replace_seconds += replace_started.elapsed().as_secs_f64();
                block
            }
        };
        for ((_, e), delay) in mg.edges_iter().zip(delays) {
            let from = map[e.from.0 as usize].expect("live endpoint");
            let to = map[e.to.0 as usize].expect("live endpoint");
            graph.add_edge(from, to, delay);
        }
        in_ports.push(
            mg.inputs()
                .iter()
                .map(|&v| map[v.0 as usize].expect("input is live"))
                .collect(),
        );
        out_ports.push(
            mg.outputs()
                .iter()
                .map(|&v| map[v.0 as usize].expect("output is live"))
                .collect(),
        );
    }

    // Design PIs → instance inputs.
    for (pi, targets) in design.pi_bindings().iter().enumerate() {
        for &(inst, port) in targets {
            graph.add_edge(pi_vertices[pi], in_ports[inst][port], zero());
        }
    }
    // Inter-module wires.
    for c in design.connections() {
        let mut wire = zero();
        if c.wire_delay_ps != 0.0 {
            wire = CanonicalForm::constant(c.wire_delay_ps, n_globals, n_locals);
        }
        graph.add_edge(
            out_ports[c.from.0][c.from.1],
            in_ports[c.to.0][c.to.1],
            wire,
        );
    }
    // Design POs.
    for &(inst, port) in design.po_sources() {
        graph.mark_output(out_ports[inst][port]);
    }

    let sources: Vec<(VertexId, CanonicalForm)> =
        graph.inputs().iter().map(|&v| (v, zero())).collect();
    Ok(AssembledDesign {
        mode,
        graph,
        sources,
        n_local_components: n_locals,
        phases,
    })
}

/// A per-instance coefficient transform into the design variable space.
/// `pub(crate)` so the sequential analysis can rewrite constraint arcs
/// with the exact transform its edge delays get.
pub(crate) enum LocalTransform {
    /// Proposed mode: full replacement matrices.
    Replace(InstanceReplacement),
    /// Global-only mode: copy the module block at a private offset.
    Offset {
        /// Per-parameter offsets into the design-level parameter blocks.
        per_param: Vec<usize>,
    },
}

impl LocalTransform {
    pub(crate) fn apply(
        &self,
        form: &CanonicalForm,
        module_layout: &VariableLayout,
        design_layout: &VariableLayout,
    ) -> Result<CanonicalForm, CoreError> {
        match self {
            LocalTransform::Replace(r) => r.apply(form, module_layout, design_layout),
            LocalTransform::Offset { per_param } => {
                let mut locals = vec![0.0; design_layout.n_locals()];
                for (p, &off) in per_param.iter().enumerate() {
                    let src = &form.locals()[module_layout.local_range(p)];
                    let base = design_layout.local_range(p).start + off;
                    locals[base..base + src.len()].copy_from_slice(src);
                }
                Ok(form.with_locals(locals))
            }
        }
    }
}

pub(crate) fn build_variable_space(
    design: &Design,
    mode: CorrelationMode,
    threads: usize,
    basis: Option<&DesignVariables>,
) -> Result<(VariableLayout, Vec<LocalTransform>, PhaseTimings), CoreError> {
    let n_params = design.config().parameters.len();
    match mode {
        CorrelationMode::Proposed => {
            // Steps 1–2 are skipped entirely when the caller injects a
            // precomputed basis (their cost shows up wherever it was
            // actually built).
            let (owned, mut phases) = match basis {
                Some(_) => (None, PhaseTimings::default()),
                None => {
                    let (vars, phases) = DesignVariables::build_profiled(design, threads)?;
                    (Some(vars), phases)
                }
            };
            let vars = basis.or(owned.as_ref()).expect("basis built or injected");
            // Step 3 (cold half): one replacement matrix set per
            // instance, each independent of the others.
            let replace_started = Instant::now();
            let instances = design.instances();
            let transforms = try_parallel_indexed(instances.len(), threads, |idx| {
                InstanceReplacement::build(&instances[idx].model, vars, idx)
                    .map(LocalTransform::Replace)
            })?;
            phases.replace_seconds += replace_started.elapsed().as_secs_f64();
            Ok((vars.layout().clone(), transforms, phases))
        }
        CorrelationMode::GlobalOnly => {
            // Concatenate every instance's local blocks per parameter.
            let mut counts = vec![0usize; n_params];
            let mut transforms = Vec::with_capacity(design.instances().len());
            for inst in design.instances() {
                let ml = inst.model.layout();
                let per_param: Vec<usize> = (0..n_params).map(|p| counts[p]).collect();
                for (p, c) in counts.iter_mut().enumerate() {
                    *c += ml.local_range(p).len();
                }
                transforms.push(LocalTransform::Offset { per_param });
            }
            Ok((
                VariableLayout::new(&counts),
                transforms,
                PhaseTimings::default(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use crate::hier::design::DesignBuilder;
    use crate::module::ModuleContext;
    use crate::params::SstaConfig;
    use ssta_netlist::{generators, DieRect};
    use std::sync::Arc;

    /// Two adder instances side by side, outputs of the first feeding the
    /// second (a miniature version of the paper's Fig. 7 topology).
    fn chain_design(gap: f64) -> Design {
        let netlist = generators::ripple_carry_adder(4).unwrap();
        let config = SstaConfig::paper();
        let ctx = Arc::new(ModuleContext::characterize(netlist, &config).unwrap());
        let model = Arc::new(extract(&ctx, &ExtractOptions::default()).unwrap());
        let (mw, mh) = model.geometry().extent_um();
        let die = DieRect {
            width: mw * 2.0 + gap + 100.0,
            height: mh + 100.0,
        };
        let mut b = DesignBuilder::new("chain", die, config);
        let u0 = b
            .add_instance("u0", model.clone(), Some(ctx.clone()), (0.0, 0.0))
            .unwrap();
        let u1 = b
            .add_instance("u1", model.clone(), Some(ctx), (mw + gap, 0.0))
            .unwrap();
        // u0 sum bits (outputs 0..4) feed u1's a inputs (0..4).
        for k in 0..4 {
            b.connect(u0, k, u1, k, 0.0).unwrap();
        }
        // u0's carry out also feeds u1's carry-in (input port 8).
        b.connect(u0, 4, u1, 8, 0.0).unwrap();
        for k in 0..9 {
            b.expose_input(vec![(u0, k)]).unwrap();
        }
        for k in 4..8 {
            b.expose_input(vec![(u1, k)]).unwrap();
        }
        for k in 0..5 {
            b.expose_output(u1, k).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn proposed_analysis_produces_sane_delay() {
        let d = chain_design(0.0);
        let t = analyze(&d, CorrelationMode::Proposed).unwrap();
        assert!(t.delay.mean() > 0.0);
        assert!(t.delay.std_dev() > 0.0);
        assert_eq!(t.po_arrivals.len(), 5);
        // The design delay dominates every PO arrival.
        for a in &t.po_arrivals {
            assert!(t.delay.mean() >= a.mean() - 1e-9);
        }
    }

    #[test]
    fn both_modes_agree_on_mean_but_differ_on_sigma() {
        let d = chain_design(0.0);
        let prop = analyze(&d, CorrelationMode::Proposed).unwrap();
        let glob = analyze(&d, CorrelationMode::GlobalOnly).unwrap();
        // Means are driven by nominal delays plus max-induced shifts;
        // they stay close (within a couple percent).
        let rel_mean = (prop.delay.mean() - glob.delay.mean()).abs() / glob.delay.mean();
        assert!(rel_mean < 0.05, "means diverged: {rel_mean}");
        // Correlated local variation must *increase* the variance of a sum
        // of module delays relative to the independent assumption.
        assert!(
            prop.delay.std_dev() > glob.delay.std_dev(),
            "proposed σ {} should exceed global-only σ {}",
            prop.delay.std_dev(),
            glob.delay.std_dev()
        );
    }

    #[test]
    fn abutted_modules_correlate_more_than_distant_ones() {
        let near = analyze(&chain_design(0.0), CorrelationMode::Proposed).unwrap();
        let far = analyze(&chain_design(400.0), CorrelationMode::Proposed).unwrap();
        // With distance, local correlation decays, so the chained delay σ
        // shrinks toward the global-only level.
        assert!(
            near.delay.std_dev() > far.delay.std_dev(),
            "near σ {} vs far σ {}",
            near.delay.std_dev(),
            far.delay.std_dev()
        );
    }

    #[test]
    fn parallel_analysis_is_bit_identical_to_serial() {
        let d = chain_design(0.0);
        for mode in [CorrelationMode::Proposed, CorrelationMode::GlobalOnly] {
            let serial = analyze_with(&d, mode, &AnalyzeOptions { threads: 1 }).unwrap();
            for threads in [0, 2, 5] {
                let par = analyze_with(&d, mode, &AnalyzeOptions { threads }).unwrap();
                assert_eq!(par.po_arrivals, serial.po_arrivals, "{mode:?}/{threads}");
                assert_eq!(par.delay, serial.delay, "{mode:?}/{threads}");
                assert_eq!(par.n_local_components, serial.n_local_components);
            }
        }
    }

    #[test]
    fn phase_timings_populate_and_stay_within_elapsed() {
        let d = chain_design(0.0);
        let t = analyze(&d, CorrelationMode::Proposed).unwrap();
        assert!(t.phases.eigen_seconds > 0.0);
        assert!(t.phases.replace_seconds > 0.0);
        assert!(t.phases.propagate_seconds > 0.0);
        assert!(t.phases.total_seconds() <= t.elapsed_seconds + 1e-9);
        let line = t.phases.to_string();
        assert!(!line.contains('\n'));
        for phase in ["partition", "covariance", "eigen", "replace", "propagate"] {
            assert!(line.contains(phase), "missing {phase} in {line}");
        }
        // Global-only skips partition/covariance/eigen entirely.
        let g = analyze(&d, CorrelationMode::GlobalOnly).unwrap();
        assert_eq!(g.phases.partition_seconds, 0.0);
        assert_eq!(g.phases.eigen_seconds, 0.0);
        assert!(g.phases.propagate_seconds > 0.0);
    }

    #[test]
    fn phase_timings_accumulate() {
        let mut a = PhaseTimings {
            partition_seconds: 1.0,
            covariance_seconds: 2.0,
            eigen_seconds: 3.0,
            replace_seconds: 4.0,
            propagate_seconds: 5.0,
        };
        a.accumulate(&a.clone());
        assert_eq!(a.total_seconds(), 30.0);
        assert_eq!(a.eigen_seconds, 6.0);
    }

    #[test]
    fn propagate_assembled_matches_analyze_and_reuses_across_modes() {
        let d = chain_design(0.0);
        let opts = AnalyzeOptions::default();
        let prop = assemble_design_graph(&d, CorrelationMode::Proposed, &opts).unwrap();
        let glob = assemble_design_graph(&d, CorrelationMode::GlobalOnly, &opts).unwrap();
        // Graph *structure* is mode-independent (only coefficients
        // differ), so one schedule serves both assemblies.
        let schedule = LevelSchedule::build(&prop.graph).unwrap();
        for (assembled, mode) in [
            (&prop, CorrelationMode::Proposed),
            (&glob, CorrelationMode::GlobalOnly),
        ] {
            let from_seam = propagate_assembled(assembled, &schedule, 0).unwrap();
            let direct = analyze(&d, mode).unwrap();
            assert_eq!(from_seam.mode, mode);
            assert_eq!(from_seam.po_arrivals, direct.po_arrivals, "{mode:?}");
            assert_eq!(from_seam.delay, direct.delay, "{mode:?}");
            assert!(from_seam.elapsed_seconds >= from_seam.phases.propagate_seconds);
        }
    }

    #[test]
    fn injected_basis_is_bit_identical_and_skips_steps_one_two() {
        let d = chain_design(0.0);
        let opts = AnalyzeOptions::default();
        let baseline = assemble_design_graph(&d, CorrelationMode::Proposed, &opts).unwrap();
        let (vars, _) = DesignVariables::build_profiled(&d, 0).unwrap();
        let injected =
            assemble_design_graph_with_basis(&d, CorrelationMode::Proposed, &opts, Some(&vars))
                .unwrap();
        // Same basis inputs ⇒ bit-identical graph coefficients.
        let schedule = LevelSchedule::build(&baseline.graph).unwrap();
        let a = propagate_assembled(&baseline, &schedule, 1).unwrap();
        let b = propagate_assembled(&injected, &schedule, 1).unwrap();
        assert_eq!(a.po_arrivals, b.po_arrivals);
        assert_eq!(a.delay, b.delay);
        // The injected path never runs partition/covariance/eigen.
        assert_eq!(injected.phases.partition_seconds, 0.0);
        assert_eq!(injected.phases.covariance_seconds, 0.0);
        assert_eq!(injected.phases.eigen_seconds, 0.0);
        assert!(baseline.phases.eigen_seconds > 0.0);
    }

    #[test]
    fn global_only_needs_no_partition_and_is_fast() {
        let d = chain_design(0.0);
        let t = analyze(&d, CorrelationMode::GlobalOnly).unwrap();
        // Variable count = sum of both instances' components.
        let per_instance: usize = d.instances()[0].model.layout().n_locals();
        assert_eq!(t.n_local_components, 2 * per_instance);
    }
}
