//! Independent-variable replacement (Section V, equation (19)).
//!
//! Each module's timing model expresses local variation in the module's
//! own PCA components `x` (with `p_l = T_m·x`, `x = W_m·p_l`). At design
//! level the same physical grid variables appear as rows of the design
//! transform: `p_l = T_d[rows]·xᵗ`. Substituting,
//!
//! `x = W_m · T_d[rows] · xᵗ  =:  R · xᵗ`
//!
//! so a delay's module-space coefficient vector `a` becomes the
//! design-space vector `Rᵀ·a`. Because the module's grid sub-covariance is
//! embedded unchanged in the design covariance (correlation depends only
//! on distance), `R·Rᵀ = I` and the replacement preserves every variance
//! and intra-module covariance — while *adding* the inter-module
//! correlation that separate variable sets cannot express.

use crate::canonical::CanonicalForm;
use crate::extract::TimingModel;
use crate::hier::analysis::PhaseTimings;
use crate::hier::design::Design;
use crate::hier::partition::DesignPartition;
use crate::params::VariableLayout;
use crate::CoreError;
use ssta_math::{Matrix, PcaBasis};
use std::sync::Arc;
use std::time::Instant;

/// The design-level independent-variable space: heterogeneous partition,
/// per-parameter PCA bases over all design grids, and the resulting
/// variable layout.
#[derive(Debug, Clone)]
pub struct DesignVariables {
    partition: DesignPartition,
    pca: Vec<Arc<PcaBasis>>,
    layout: VariableLayout,
}

impl DesignVariables {
    /// Builds the design variable space: heterogeneous partition followed
    /// by a PCA of the design-level grid covariance (steps 1–2 of Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates PCA failures ([`CoreError::Math`]).
    pub fn build(design: &Design) -> Result<Self, CoreError> {
        Ok(Self::build_profiled(design, 1)?.0)
    }

    /// As [`build`](Self::build), computing the design covariance across
    /// up to `threads` worker threads (`0` = available parallelism) and
    /// reporting how long each phase (partition / covariance / eigen)
    /// took. Results are bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates PCA failures ([`CoreError::Math`]).
    pub fn build_profiled(
        design: &Design,
        threads: usize,
    ) -> Result<(Self, PhaseTimings), CoreError> {
        let mut phases = PhaseTimings::default();
        let geometries: Vec<_> = design.translated_geometries();
        let config = design.config();

        let started = Instant::now();
        let partition = DesignPartition::build(design.die(), &geometries, config.grid_pitch_um());
        phases.partition_seconds = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let cov = config.correlation.covariance_matrix_threaded(
            partition.centers(),
            config.grid_pitch_um(),
            threads,
        );
        phases.covariance_seconds = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let basis = Arc::new(PcaBasis::from_covariance(&cov, config.pca)?);
        phases.eigen_seconds = started.elapsed().as_secs_f64();

        let pca: Vec<Arc<PcaBasis>> = config
            .parameters
            .iter()
            .map(|_| Arc::clone(&basis))
            .collect();
        let layout =
            VariableLayout::new(&pca.iter().map(|b| b.n_components()).collect::<Vec<usize>>());
        Ok((
            DesignVariables {
                partition,
                pca,
                layout,
            },
            phases,
        ))
    }

    /// The heterogeneous grid partition.
    pub fn partition(&self) -> &DesignPartition {
        &self.partition
    }

    /// Per-parameter design PCA bases.
    pub fn pca(&self) -> &[Arc<PcaBasis>] {
        &self.pca
    }

    /// Layout of the design variable space.
    pub fn layout(&self) -> &VariableLayout {
        &self.layout
    }
}

/// The replacement matrices `R_p` (module components × design components)
/// for one instance, one per process parameter.
#[derive(Debug, Clone)]
pub struct InstanceReplacement {
    per_param: Vec<Matrix>,
}

impl InstanceReplacement {
    /// Builds the replacement for instance `idx` of the design
    /// (step 3 of Fig. 5; equation (19)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Math`] on dimension mismatches (impossible for
    /// partitions built from the same design).
    pub fn build(
        model: &TimingModel,
        vars: &DesignVariables,
        idx: usize,
    ) -> Result<Self, CoreError> {
        let rows: Vec<usize> = vars.partition.instance_range(idx).collect();
        let mut per_param = Vec::with_capacity(model.pca().len());
        for (p, module_basis) in model.pca().iter().enumerate() {
            let design_t = vars.pca[p].transform();
            // T_d restricted to this instance's grid rows.
            let cols: Vec<usize> = (0..design_t.cols()).collect();
            let t_sub = design_t.select(&rows, &cols);
            // R = W_m · T_d[rows]  (k_m × k_d). Cache-blocked: t_sub is
            // `grids × design-components` — hundreds of columns on
            // thousand-grid dies — and the unblocked kernel re-streams
            // all of it once per whitening row. Bit-identical to
            // `matmul` (regression-tested below and in ssta_math).
            let r = module_basis.whiten().matmul_blocked(&t_sub)?;
            per_param.push(r);
        }
        Ok(InstanceReplacement { per_param })
    }

    /// The replacement matrix for parameter `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn matrix(&self, p: usize) -> &Matrix {
        &self.per_param[p]
    }

    /// Rewrites a canonical form from module space into design space:
    /// per-parameter local blocks map through `Rᵀ`; nominal, globals and
    /// the private random part are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Math`] if the form does not match the module
    /// layout.
    pub fn apply(
        &self,
        form: &CanonicalForm,
        module_layout: &VariableLayout,
        design_layout: &VariableLayout,
    ) -> Result<CanonicalForm, CoreError> {
        let mut locals = vec![0.0; design_layout.n_locals()];
        for (p, r) in self.per_param.iter().enumerate() {
            let src = &form.locals()[module_layout.local_range(p)];
            let mapped = r.mat_vec_transposed(src)?;
            let dst_range = design_layout.local_range(p);
            locals[dst_range].copy_from_slice(&mapped);
        }
        Ok(form.with_locals(locals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use crate::hier::design::DesignBuilder;
    use crate::module::ModuleContext;
    use crate::params::SstaConfig;
    use ssta_math::Matrix;
    use ssta_netlist::{generators, DieRect};

    fn two_instance_design() -> (Design, Arc<TimingModel>) {
        let netlist = generators::ripple_carry_adder(8).unwrap();
        let config = SstaConfig::paper();
        let ctx = Arc::new(ModuleContext::characterize(netlist, &config).unwrap());
        let model = Arc::new(extract(&ctx, &ExtractOptions::default()).unwrap());
        let (mw, mh) = model.geometry().extent_um();
        let die = DieRect {
            width: mw * 2.0,
            height: mh,
        };
        let mut b = DesignBuilder::new("pair", die, config);
        let a = b
            .add_instance("u0", Arc::clone(&model), Some(Arc::clone(&ctx)), (0.0, 0.0))
            .unwrap();
        let c = b
            .add_instance("u1", Arc::clone(&model), Some(Arc::clone(&ctx)), (mw, 0.0))
            .unwrap();
        // Feed u0's sum outputs into u1's a-inputs; everything else is PI.
        for k in 0..8 {
            b.connect(a, k, c, k, 0.0).unwrap();
        }
        for k in 0..17 {
            b.expose_input(vec![(a, k)]).unwrap();
        }
        for k in 8..17 {
            b.expose_input(vec![(c, k)]).unwrap();
        }
        for k in 0..9 {
            b.expose_output(c, k).unwrap();
        }
        // u0's carry-out is also observable.
        b.expose_output(a, 8).unwrap();
        (b.finish().unwrap(), model)
    }

    #[test]
    fn replacement_is_row_orthonormal() {
        // R·Rᵀ = I: the module components remain unit-variance independent
        // after replacement (the embedding-preservation property).
        let (design, model) = two_instance_design();
        let vars = DesignVariables::build(&design).unwrap();
        for idx in 0..2 {
            let repl = InstanceReplacement::build(&model, &vars, idx).unwrap();
            for p in 0..model.pca().len() {
                let r = repl.matrix(p);
                let rrt = r.matmul(&r.transposed()).unwrap();
                let eye = Matrix::identity(r.rows());
                let err = rrt.max_abs_diff(&eye).unwrap();
                assert!(err < 1e-6, "instance {idx} param {p}: ||RRᵀ - I|| = {err}");
            }
        }
    }

    #[test]
    fn blocked_replacement_build_is_bit_identical_to_unblocked() {
        // The replacement matrices must not change by a single bit from
        // the cache-blocking of their defining matmul — the engine's
        // fingerprint-keyed model reuse depends on design-level results
        // staying bit-deterministic across kernel choices.
        let (design, model) = two_instance_design();
        let vars = DesignVariables::build(&design).unwrap();
        for idx in 0..2 {
            let repl = InstanceReplacement::build(&model, &vars, idx).unwrap();
            let rows: Vec<usize> = vars.partition().instance_range(idx).collect();
            for (p, module_basis) in model.pca().iter().enumerate() {
                let design_t = vars.pca()[p].transform();
                let cols: Vec<usize> = (0..design_t.cols()).collect();
                let t_sub = design_t.select(&rows, &cols);
                let unblocked = module_basis.whiten().matmul(&t_sub).unwrap();
                assert_eq!(
                    repl.matrix(p).as_slice(),
                    unblocked.as_slice(),
                    "instance {idx} param {p}: blocked replacement diverged"
                );
            }
        }
    }

    #[test]
    fn replacement_preserves_variance_and_mean() {
        let (design, model) = two_instance_design();
        let vars = DesignVariables::build(&design).unwrap();
        let repl = InstanceReplacement::build(&model, &vars, 0).unwrap();
        for (_, e) in model.graph().edges_iter() {
            let mapped = repl.apply(&e.delay, model.layout(), vars.layout()).unwrap();
            assert_eq!(mapped.mean(), e.delay.mean());
            assert!(
                (mapped.variance() - e.delay.variance()).abs()
                    < 1e-9 * e.delay.variance().max(1e-9),
                "variance drifted: {} -> {}",
                e.delay.variance(),
                mapped.variance()
            );
            assert_eq!(mapped.globals(), e.delay.globals());
            assert_eq!(mapped.random(), e.delay.random());
        }
    }

    #[test]
    fn replacement_preserves_intra_module_covariance() {
        let (design, model) = two_instance_design();
        let vars = DesignVariables::build(&design).unwrap();
        let repl = InstanceReplacement::build(&model, &vars, 1).unwrap();
        let edges: Vec<&CanonicalForm> = model
            .graph()
            .edges_iter()
            .map(|(_, e)| &e.delay)
            .take(10)
            .collect();
        for a in &edges {
            for b in &edges {
                let ma = repl.apply(a, model.layout(), vars.layout()).unwrap();
                let mb = repl.apply(b, model.layout(), vars.layout()).unwrap();
                let want = a.covariance(b);
                let got = ma.covariance(&mb);
                assert!(
                    (want - got).abs() < 1e-9 * want.abs().max(1e-6),
                    "covariance drifted: {want} -> {got}"
                );
            }
        }
    }

    #[test]
    fn same_module_different_instances_now_correlate() {
        // The whole point of the replacement: the *same* edge delay of two
        // abutted instances shares local variables at design level.
        let (design, model) = two_instance_design();
        let vars = DesignVariables::build(&design).unwrap();
        let r0 = InstanceReplacement::build(&model, &vars, 0).unwrap();
        let r1 = InstanceReplacement::build(&model, &vars, 1).unwrap();
        let (_, e) = model.graph().edges_iter().next().unwrap();
        let a = r0.apply(&e.delay, model.layout(), vars.layout()).unwrap();
        let b = r1.apply(&e.delay, model.layout(), vars.layout()).unwrap();
        // Local parts now overlap: covariance beyond the global share.
        let local_cov: f64 = a.locals().iter().zip(b.locals()).map(|(x, y)| x * y).sum();
        assert!(
            local_cov > 0.0,
            "abutted instances must share local variation, got {local_cov}"
        );
    }
}
