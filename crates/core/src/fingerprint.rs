//! Content fingerprints for module characterization inputs.
//!
//! A timing model is a pure function of four inputs: the netlist
//! structure, the cell library it is mapped to, the [`SstaConfig`] it is
//! characterized under (placement and grids are derived deterministically
//! from these), and the [`ExtractOptions`] driving model extraction. The
//! engine's model library keys cached models by a SHA-256 over exactly
//! those inputs, so two instances of the same module definition share one
//! extraction, while any semantic change — a different netlist, sigma,
//! grid pitch or pruning threshold — produces a different key.
//!
//! Scheduling knobs that cannot change results (worker-thread counts,
//! batch sizes) are deliberately excluded, so re-running with different
//! parallelism still hits the cache.

use crate::extract::ExtractOptions;
use crate::params::SstaConfig;
use ssta_math::digest::{sha256, Sha256};
use ssta_netlist::Netlist;

/// A content fingerprint of one module's characterization inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModuleFingerprint(Sha256);

impl ModuleFingerprint {
    /// The fingerprint as lowercase hex — filesystem- and key-safe.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }

    /// The underlying digest.
    pub fn digest(&self) -> &Sha256 {
        &self.0
    }
}

impl std::fmt::Display for ModuleFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Fingerprints a module: netlist structure + library + configuration +
/// extraction options.
///
/// The serialized forms are deterministic (struct fields in declaration
/// order, maps with sorted keys, shortest round-trip floats), so equal
/// inputs always produce equal fingerprints. The netlist *name* is a
/// label, not structure — the same circuit registered under two names
/// (`alu_east`/`alu_west`) must dedupe to one characterization — so it
/// is excluded from the hash.
pub fn module_fingerprint(
    netlist: &Netlist,
    config: &SstaConfig,
    options: &ExtractOptions,
) -> ModuleFingerprint {
    let mut payload = String::new();
    payload.push_str("hier-ssta module fingerprint v1\n");
    let mut structure = serde::Serialize::to_value(netlist);
    if let serde::Value::Map(entries) = &mut structure {
        entries.retain(|(field, _)| field != "name");
    }
    payload.push_str(&serde_json::to_string(&structure).expect("netlist serializes"));
    payload.push('\n');
    payload.push_str(&serde_json::to_string(&**netlist.library()).expect("library serializes"));
    payload.push('\n');
    payload.push_str(&serde_json::to_string(config).expect("config serializes"));
    payload.push('\n');
    // Semantic extraction options only: thread/batch knobs are excluded
    // (they cannot change the extracted model).
    payload.push_str(&format!(
        "delta={:?};ensure_connectivity={};accuracy_repair={:?};max_repair_rounds={};\
         prefilter_sigmas={:?};max_merge_rounds={}",
        options.delta,
        options.ensure_connectivity,
        options.accuracy_repair,
        options.max_repair_rounds,
        options.criticality.prefilter_sigmas,
        options.max_merge_rounds,
    ));
    ModuleFingerprint(sha256(payload.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_netlist::generators;

    fn adder() -> Netlist {
        generators::ripple_carry_adder(4).unwrap()
    }

    #[test]
    fn equal_inputs_equal_fingerprints() {
        let a = module_fingerprint(&adder(), &SstaConfig::paper(), &ExtractOptions::default());
        let b = module_fingerprint(&adder(), &SstaConfig::paper(), &ExtractOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.to_hex().len(), 64);
    }

    #[test]
    fn renaming_a_netlist_keeps_the_key() {
        // The name is a label: same structure, different label, one
        // characterization unit.
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        let base = module_fingerprint(&adder(), &cfg, &opts);
        let renamed = adder().renamed("alu_west");
        assert_eq!(base, module_fingerprint(&renamed, &cfg, &opts));
    }

    #[test]
    fn netlist_structure_changes_the_key() {
        let small = generators::ripple_carry_adder(4).unwrap();
        let large = generators::ripple_carry_adder(5).unwrap();
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        assert_ne!(
            module_fingerprint(&small, &cfg, &opts),
            module_fingerprint(&large, &cfg, &opts)
        );
    }

    #[test]
    fn config_and_options_change_the_key() {
        let n = adder();
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        let base = module_fingerprint(&n, &cfg, &opts);

        let mut other_cfg = cfg.clone();
        other_cfg.grid_side_cells = 5;
        assert_ne!(base, module_fingerprint(&n, &other_cfg, &opts));

        let other_opts = ExtractOptions {
            delta: 0.01,
            ..ExtractOptions::default()
        };
        assert_ne!(base, module_fingerprint(&n, &cfg, &other_opts));
    }

    #[test]
    fn scheduling_knobs_do_not_change_the_key() {
        let n = adder();
        let cfg = SstaConfig::paper();
        let mut opts = ExtractOptions::default();
        let base = module_fingerprint(&n, &cfg, &opts);
        opts.criticality.threads = 7;
        opts.criticality.output_batch = 3;
        assert_eq!(base, module_fingerprint(&n, &cfg, &opts));
    }
}
