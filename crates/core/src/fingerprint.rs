//! Content fingerprints for module characterization inputs.
//!
//! A timing model is a pure function of four inputs: the netlist
//! structure, the cell library it is mapped to, the [`SstaConfig`] it is
//! characterized under (placement and grids are derived deterministically
//! from these), and the [`ExtractOptions`] driving model extraction. The
//! engine's model library keys cached models by a SHA-256 over exactly
//! those inputs, so two instances of the same module definition share one
//! extraction, while any semantic change — a different netlist, sigma,
//! grid pitch or pruning threshold — produces a different key.
//!
//! The fingerprint is computed in two stages so the expensive part can be
//! cached:
//!
//! 1. [`netlist_digest`] canonicalizes the netlist structure and its cell
//!    library into a [`NetlistDigest`] — the costly step, proportional to
//!    the netlist size, and independent of any configuration;
//! 2. [`module_fingerprint_from_digest`] combines that digest with the
//!    (small) serialized configuration and extraction options.
//!
//! A scenario sweep re-keys the same netlists under many configurations;
//! stage 1 is computed once per netlist and stage 2 once per scenario,
//! so K scenarios never re-canonicalize the same netlist K times.
//!
//! Scheduling knobs that cannot change results (worker-thread counts,
//! batch sizes) are deliberately excluded, so re-running with different
//! parallelism still hits the cache.

use crate::extract::ExtractOptions;
use crate::params::SstaConfig;
use ssta_math::digest::{sha256, Sha256};
use ssta_netlist::{Netlist, SeqCellType};

/// A content fingerprint of one module's characterization inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModuleFingerprint(Sha256);

impl ModuleFingerprint {
    /// The fingerprint as lowercase hex — filesystem- and key-safe.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }

    /// The underlying digest.
    pub fn digest(&self) -> &Sha256 {
        &self.0
    }
}

impl std::fmt::Display for ModuleFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// A digest of a netlist's canonical structural form (structure + cell
/// library, name excluded) — the configuration-independent half of a
/// [`ModuleFingerprint`].
///
/// Computing it walks and serializes the whole netlist, so callers that
/// fingerprint the same netlist under many configurations (scenario
/// sweeps) should compute it once and reuse it via
/// [`module_fingerprint_from_digest`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetlistDigest(Sha256);

impl NetlistDigest {
    /// The digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

impl std::fmt::Display for NetlistDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Digests a netlist's canonical structural form: the serialized
/// structure (deterministic field order, sorted maps, shortest
/// round-trip floats) plus its cell library.
///
/// The netlist *name* is a label, not structure — the same circuit
/// registered under two names (`alu_east`/`alu_west`) must dedupe to one
/// characterization — so it is excluded from the digest.
pub fn netlist_digest(netlist: &Netlist) -> NetlistDigest {
    let mut payload = String::new();
    payload.push_str("hier-ssta netlist digest v1\n");
    let mut structure = serde::Serialize::to_value(netlist);
    if let serde::Value::Map(entries) = &mut structure {
        entries.retain(|(field, _)| field != "name");
    }
    payload.push_str(&serde_json::to_string(&structure).expect("netlist serializes"));
    payload.push('\n');
    payload.push_str(&serde_json::to_string(&**netlist.library()).expect("library serializes"));
    NetlistDigest(sha256(payload.as_bytes()))
}

/// Serializes the netlist-independent half of the fingerprint payload:
/// the configuration plus the semantic extraction options. Shared by
/// [`module_fingerprint_from_digest`] and [`extraction_signature`] so
/// the two can never disagree about which knobs are
/// extraction-relevant.
fn config_extract_payload(config: &SstaConfig, options: &ExtractOptions) -> String {
    let mut payload = String::new();
    payload.push_str(&serde_json::to_string(config).expect("config serializes"));
    payload.push('\n');
    // Semantic extraction options only: thread/batch knobs are excluded
    // (they cannot change the extracted model).
    payload.push_str(&format!(
        "delta={:?};ensure_connectivity={};accuracy_repair={:?};max_repair_rounds={};\
         prefilter_sigmas={:?};max_merge_rounds={}",
        options.delta,
        options.ensure_connectivity,
        options.accuracy_repair,
        options.max_repair_rounds,
        options.criticality.prefilter_sigmas,
        options.max_merge_rounds,
    ));
    payload
}

/// Combines a precomputed [`NetlistDigest`] with a configuration and
/// extraction options into the full module fingerprint — the cheap half
/// of the two-stage scheme, independent of the netlist size.
pub fn module_fingerprint_from_digest(
    structure: &NetlistDigest,
    config: &SstaConfig,
    options: &ExtractOptions,
) -> ModuleFingerprint {
    let mut payload = String::new();
    // v5: the SSTM payload moved to binary layout 2 (optional sequential
    // interface block after the stats). New builds still *read* layout 1,
    // but a store shared between build generations would hand layout-2
    // artifacts to layout-1 readers; re-keying keeps each generation's
    // cache self-consistent at the cost of one repopulating miss.
    // (v4 re-keyed for the levelized pull engine's reduction-order
    // change; v3 for the Jacobi → Householder/QL eigensolver switch.)
    payload.push_str("hier-ssta module fingerprint v5\n");
    payload.push_str(&structure.to_hex());
    payload.push('\n');
    payload.push_str(&config_extract_payload(config, options));
    ModuleFingerprint(sha256(payload.as_bytes()))
}

/// Digests a `(SstaConfig, ExtractOptions)` pair alone — the
/// netlist-independent extraction signature of a scenario.
///
/// Two scenarios with equal signatures produce equal module
/// fingerprints for *every* module (the netlist digest enters the
/// fingerprint separately), so a sweep planner can group scenarios by
/// this signature before any netlist work runs and schedule exactly one
/// extraction pass per group. Built from the same payload as
/// [`module_fingerprint_from_digest`], so the grouping is exactly as
/// fine as the cache keys themselves — never coarser, never finer.
pub fn extraction_signature(config: &SstaConfig, options: &ExtractOptions) -> String {
    let mut payload = String::new();
    payload.push_str("hier-ssta extraction signature v1\n");
    payload.push_str(&config_extract_payload(config, options));
    sha256(payload.as_bytes()).to_hex()
}

/// Fingerprints a module: netlist structure + library + configuration +
/// extraction options.
///
/// Equivalent to [`netlist_digest`] followed by
/// [`module_fingerprint_from_digest`]; equal inputs always produce equal
/// fingerprints.
pub fn module_fingerprint(
    netlist: &Netlist,
    config: &SstaConfig,
    options: &ExtractOptions,
) -> ModuleFingerprint {
    module_fingerprint_from_digest(&netlist_digest(netlist), config, options)
}

/// Fingerprints a *registered* module: the combinational core's inputs
/// plus the register cell banked across its inputs.
///
/// Registered extraction
/// ([`extract_registered`](crate::extract::extract_registered)) produces
/// a different artifact than plain extraction of the same core — the
/// sequential interface depends on the register cell's clock-to-q, setup,
/// hold and sensitivities — so the cache key must separate the two and
/// distinguish register cells. The register spec enters via its canonical
/// serialized form, keeping the two-stage digest scheme (the netlist
/// digest is still computed once per core).
pub fn registered_fingerprint_from_digest(
    structure: &NetlistDigest,
    config: &SstaConfig,
    options: &ExtractOptions,
    register: &SeqCellType,
) -> ModuleFingerprint {
    let mut payload = String::new();
    payload.push_str("hier-ssta registered module fingerprint v1\n");
    payload.push_str(&module_fingerprint_from_digest(structure, config, options).to_hex());
    payload.push('\n');
    payload.push_str(&serde_json::to_string(register).expect("register spec serializes"));
    ModuleFingerprint(sha256(payload.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_netlist::generators;

    fn adder() -> Netlist {
        generators::ripple_carry_adder(4).unwrap()
    }

    #[test]
    fn equal_inputs_equal_fingerprints() {
        let a = module_fingerprint(&adder(), &SstaConfig::paper(), &ExtractOptions::default());
        let b = module_fingerprint(&adder(), &SstaConfig::paper(), &ExtractOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.to_hex().len(), 64);
    }

    #[test]
    fn staged_and_direct_fingerprints_agree() {
        let n = adder();
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        let digest = netlist_digest(&n);
        assert_eq!(
            module_fingerprint(&n, &cfg, &opts),
            module_fingerprint_from_digest(&digest, &cfg, &opts)
        );
    }

    #[test]
    fn renaming_a_netlist_keeps_the_key() {
        // The name is a label: same structure, different label, one
        // characterization unit.
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        let base = module_fingerprint(&adder(), &cfg, &opts);
        let renamed = adder().renamed("alu_west");
        assert_eq!(netlist_digest(&adder()), netlist_digest(&renamed));
        assert_eq!(base, module_fingerprint(&renamed, &cfg, &opts));
    }

    #[test]
    fn netlist_structure_changes_the_key() {
        let small = generators::ripple_carry_adder(4).unwrap();
        let large = generators::ripple_carry_adder(5).unwrap();
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        assert_ne!(netlist_digest(&small), netlist_digest(&large));
        assert_ne!(
            module_fingerprint(&small, &cfg, &opts),
            module_fingerprint(&large, &cfg, &opts)
        );
    }

    #[test]
    fn config_and_options_change_the_key() {
        let n = adder();
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        let base = module_fingerprint(&n, &cfg, &opts);

        let mut other_cfg = cfg.clone();
        other_cfg.grid_side_cells = 5;
        assert_ne!(base, module_fingerprint(&n, &other_cfg, &opts));

        let other_opts = ExtractOptions {
            delta: 0.01,
            ..ExtractOptions::default()
        };
        assert_ne!(base, module_fingerprint(&n, &cfg, &other_opts));
    }

    #[test]
    fn extraction_signature_tracks_the_fingerprint_inputs() {
        let n = adder();
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        let base_sig = extraction_signature(&cfg, &opts);
        assert_eq!(base_sig, extraction_signature(&cfg, &opts));
        assert_eq!(base_sig.len(), 64);

        // Equal signatures ⇒ equal module fingerprints (the planner's
        // grouping invariant).
        let base_fp = module_fingerprint(&n, &cfg, &opts);
        assert_eq!(base_fp, module_fingerprint(&n, &cfg.clone(), &opts.clone()));

        // Any extraction-relevant change moves the signature…
        let mut other_cfg = cfg.clone();
        other_cfg.parameters[0].sigma_rel *= 1.5;
        assert_ne!(base_sig, extraction_signature(&other_cfg, &opts));
        let other_opts = ExtractOptions {
            delta: 0.01,
            ..ExtractOptions::default()
        };
        assert_ne!(base_sig, extraction_signature(&cfg, &other_opts));

        // …while scheduling knobs do not.
        let mut threaded = opts.clone();
        threaded.criticality.threads = 9;
        assert_eq!(base_sig, extraction_signature(&cfg, &threaded));
    }

    #[test]
    fn registered_fingerprint_separates_core_and_register() {
        let n = adder();
        let cfg = SstaConfig::paper();
        let opts = ExtractOptions::default();
        let digest = netlist_digest(&n);
        let plain = module_fingerprint_from_digest(&digest, &cfg, &opts);
        let lib = ssta_netlist::seq_library_90nm();
        let dff =
            registered_fingerprint_from_digest(&digest, &cfg, &opts, lib.find("DFF").unwrap());
        let dffx2 =
            registered_fingerprint_from_digest(&digest, &cfg, &opts, lib.find("DFFX2").unwrap());
        // Same core: the registered artifact must never collide with the
        // combinational one, and register cells must not collide with
        // each other.
        assert_ne!(plain, dff);
        assert_ne!(dff, dffx2);
        assert_eq!(
            dff,
            registered_fingerprint_from_digest(&digest, &cfg, &opts, lib.find("DFF").unwrap())
        );
    }

    #[test]
    fn scheduling_knobs_do_not_change_the_key() {
        let n = adder();
        let cfg = SstaConfig::paper();
        let mut opts = ExtractOptions::default();
        let base = module_fingerprint(&n, &cfg, &opts);
        opts.criticality.threads = 7;
        opts.criticality.output_batch = 3;
        assert_eq!(base, module_fingerprint(&n, &cfg, &opts));
    }
}
