//! Hierarchical statistical static timing analysis — the core of the
//! DATE 2009 paper by Li, Chen, Schmidt, Schneider and Schlichtmann.
//!
//! The crate provides, bottom-up:
//!
//! * [`CanonicalForm`] — the first-order Gaussian delay form with exact
//!   `sum` and Clark moment-matched `max` (Section II);
//! * [`spatial`] / [`SstaConfig`] — the grid-based spatial-correlation
//!   model and the paper's process-variation configuration (Section II/VI);
//! * [`ModuleContext`] — module characterization: placement, grid
//!   partition, per-parameter PCA, and the statistical timing graph;
//! * [`criticality`] — all-pairs edge criticality (Section IV-B);
//! * [`extract`] — gray-box timing-model extraction: criticality pruning
//!   plus serial/parallel merges (Section IV), producing a serializable
//!   [`TimingModel`];
//! * [`codec`] — the deterministic binary wire format for extracted
//!   models (SSTM payload codec 1): bit-exact `f64`s, varint topology,
//!   roughly 2–3× smaller than the JSON encoding;
//! * [`hier`] — hierarchical design analysis with heterogeneous grids and
//!   independent-variable replacement (Section V);
//! * [`scenario`] — named what-if overlays of the analysis setup, split
//!   into extraction-relevant and analysis-level knobs so sweeps share
//!   cached models wherever the math allows;
//! * [`yield_analysis`] — delay-yield utilities;
//! * [`parallel`] / [`cancel`] — deterministic fork-join helpers and the
//!   cooperative [`CancelToken`] that serving layers thread through
//!   long-running analyses.
//!
//! # Example: extract a timing model and inspect its compression
//!
//! ```
//! use ssta_core::{ExtractOptions, ModuleContext, SstaConfig};
//! use ssta_netlist::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = generators::ripple_carry_adder(8)?;
//! let ctx = ModuleContext::characterize(netlist, &SstaConfig::paper())?;
//! let model = ctx.extract_model(&ExtractOptions::default())?;
//! println!(
//!     "compressed {} -> {} edges",
//!     model.stats().original_edges,
//!     model.edge_count()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod error;
mod module;
mod params;

pub mod cancel;
pub mod codec;
pub mod criticality;
pub mod extract;
pub mod fingerprint;
pub mod hier;
pub mod parallel;
pub mod scenario;
pub mod spatial;
pub mod yield_analysis;

pub use cancel::{CancelToken, Cancelled};
pub use canonical::CanonicalForm;
pub use criticality::CriticalityOptions;
pub use error::CoreError;
pub use extract::{
    extract_registered, ConstraintArc, ExtractOptions, ExtractionStats, SequentialModel,
    TimingModel,
};
pub use fingerprint::{
    extraction_signature, module_fingerprint, module_fingerprint_from_digest, netlist_digest,
    registered_fingerprint_from_digest, ModuleFingerprint, NetlistDigest,
};
pub use hier::{
    analyze, analyze_with, assemble_design_graph, assemble_design_graph_with_basis,
    propagate_assembled, AnalyzeOptions, AssembledDesign, CorrelationMode, Design, DesignBuilder,
    DesignTiming, PhaseTimings,
};
pub use hier::{analyze_sequential, SequentialAnalyzeOptions, SequentialTiming, StageTiming};
pub use hier::{DesignVariables, InstanceReplacement};
// `propagate_assembled` takes the schedule type by reference, so re-export
// it — callers shouldn't need a direct ssta-timing dependency to name it.
pub use module::ModuleContext;
pub use params::{ParameterSpec, SstaConfig, VariableLayout};
pub use scenario::ScenarioOverlay;
pub use spatial::{CorrelationModel, GridGeometry};
pub use ssta_timing::LevelSchedule;
