//! Process-variation configuration and the independent-variable layout.

use crate::spatial::CorrelationModel;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use ssta_math::PcaOptions;
use ssta_netlist::ProcessParam;
use std::ops::Range;

/// One varying process parameter: which one, and its total relative σ.
///
/// The split of that variance into global/local/random shares is common to
/// all parameters and lives in [`CorrelationModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpec {
    /// The parameter.
    pub param: ProcessParam,
    /// Total standard deviation as a fraction of the nominal value
    /// (e.g. `0.157` for transistor length in the paper).
    pub sigma_rel: f64,
}

/// Full SSTA configuration: parameters, spatial correlation, placement and
/// grid settings, PCA retention policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SstaConfig {
    /// The varying parameters (paper defaults: L, Tox, Vth, CL).
    pub parameters: Vec<ParameterSpec>,
    /// Spatial-correlation model shared by all parameters.
    pub correlation: CorrelationModel,
    /// Cell-site pitch in µm used by the row placement.
    pub cell_pitch_um: f64,
    /// Grid side length in cell pitches. The paper partitions so that a
    /// grid holds fewer than 100 cells; 10×10 sites achieves that.
    pub grid_side_cells: usize,
    /// PCA component-retention policy.
    pub pca: PcaOptions,
}

impl SstaConfig {
    /// The paper's Section VI settings: σ(L) = 15.7 %, σ(Tox) = 5.3 %,
    /// σ(Vth) = 4.4 %, σ(CL) = 15 %; neighbouring-grid correlation 0.92
    /// decaying to the 0.42 global floor at grid distance 15; grids of
    /// fewer than 100 cells; all PCA components retained.
    pub fn paper() -> Self {
        SstaConfig {
            parameters: vec![
                ParameterSpec {
                    param: ProcessParam::Length,
                    sigma_rel: 0.157,
                },
                ParameterSpec {
                    param: ProcessParam::OxideThickness,
                    sigma_rel: 0.053,
                },
                ParameterSpec {
                    param: ProcessParam::Threshold,
                    sigma_rel: 0.044,
                },
                ParameterSpec {
                    param: ProcessParam::Load,
                    sigma_rel: 0.15,
                },
            ],
            correlation: CorrelationModel::paper(),
            cell_pitch_um: 2.0,
            grid_side_cells: 10,
            pca: PcaOptions::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for empty parameter lists, duplicate
    /// parameters, non-positive sigmas/pitches or invalid variance shares.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.parameters.is_empty() {
            return Err(CoreError::Config {
                reason: "at least one process parameter is required".into(),
            });
        }
        for (i, p) in self.parameters.iter().enumerate() {
            if !(p.sigma_rel > 0.0 && p.sigma_rel < 1.0) {
                return Err(CoreError::Config {
                    reason: format!("sigma_rel {} out of (0, 1) for {}", p.sigma_rel, p.param),
                });
            }
            if self.parameters[..i].iter().any(|q| q.param == p.param) {
                return Err(CoreError::Config {
                    reason: format!("duplicate parameter {}", p.param),
                });
            }
        }
        if self.cell_pitch_um <= 0.0 {
            return Err(CoreError::Config {
                reason: "cell pitch must be positive".into(),
            });
        }
        if self.grid_side_cells == 0 {
            return Err(CoreError::Config {
                reason: "grid side must be at least one cell".into(),
            });
        }
        self.correlation.validate()
    }

    /// Grid pitch in µm (`cell_pitch_um × grid_side_cells`).
    pub fn grid_pitch_um(&self) -> f64 {
        self.cell_pitch_um * self.grid_side_cells as f64
    }
}

impl Default for SstaConfig {
    /// The paper's settings ([`SstaConfig::paper`]).
    fn default() -> Self {
        SstaConfig::paper()
    }
}

/// Layout of a canonical form's variable space: one global slot per
/// parameter, plus a block of local PCA components per parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableLayout {
    /// Prefix offsets: `local block p = offsets[p]..offsets[p + 1]`.
    offsets: Vec<usize>,
}

impl VariableLayout {
    /// Builds a layout from per-parameter local component counts.
    pub fn new(local_counts: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(local_counts.len() + 1);
        offsets.push(0);
        for &c in local_counts {
            offsets.push(offsets.last().expect("non-empty") + c);
        }
        VariableLayout { offsets }
    }

    /// Number of parameters (= number of global slots).
    pub fn n_params(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of local components across all parameters.
    pub fn n_locals(&self) -> usize {
        *self.offsets.last().expect("non-empty")
    }

    /// The index range of parameter `p`'s local block.
    ///
    /// # Panics
    ///
    /// Panics if `p >= n_params()`.
    pub fn local_range(&self, p: usize) -> Range<usize> {
        assert!(p < self.n_params(), "parameter index out of range");
        self.offsets[p]..self.offsets[p + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        SstaConfig::paper().validate().unwrap();
        assert_eq!(SstaConfig::default(), SstaConfig::paper());
    }

    #[test]
    fn paper_sigmas_match_section_six() {
        let c = SstaConfig::paper();
        let sigma = |p: ProcessParam| {
            c.parameters
                .iter()
                .find(|s| s.param == p)
                .map(|s| s.sigma_rel)
                .unwrap()
        };
        assert_eq!(sigma(ProcessParam::Length), 0.157);
        assert_eq!(sigma(ProcessParam::OxideThickness), 0.053);
        assert_eq!(sigma(ProcessParam::Threshold), 0.044);
        assert_eq!(sigma(ProcessParam::Load), 0.15);
    }

    #[test]
    fn grid_holds_less_than_100_cells() {
        let c = SstaConfig::paper();
        assert!(c.grid_side_cells * c.grid_side_cells <= 100);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SstaConfig::paper();
        c.parameters.clear();
        assert!(c.validate().is_err());

        let mut c = SstaConfig::paper();
        c.parameters.push(c.parameters[0]); // duplicate
        assert!(c.validate().is_err());

        let mut c = SstaConfig::paper();
        c.parameters[0].sigma_rel = 1.5;
        assert!(c.validate().is_err());

        let mut c = SstaConfig::paper();
        c.cell_pitch_um = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn layout_ranges_partition_the_locals() {
        let l = VariableLayout::new(&[3, 0, 5]);
        assert_eq!(l.n_params(), 3);
        assert_eq!(l.n_locals(), 8);
        assert_eq!(l.local_range(0), 0..3);
        assert_eq!(l.local_range(1), 3..3);
        assert_eq!(l.local_range(2), 3..8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layout_range_bound_check() {
        let l = VariableLayout::new(&[2]);
        let _ = l.local_range(1);
    }
}
