//! The compact binary model codec (SSTM payload codec 1).
//!
//! Extracted [`TimingModel`]s are the product the DATE'09 flow ships
//! across the IP-vendor/integrator boundary, so their wire format is a
//! contract. JSON (payload codec 0) is self-describing but bulky — a
//! c880 model weighs ~118 KiB, dominated by `f64`s printed at 17
//! significant digits. This codec stores the same structure as a
//! deterministic, length-prefixed binary stream built on
//! [`ssta_math::codec`]:
//!
//! * every `f64` is its 8-byte IEEE-754 bit pattern (bit-exact — a
//!   decoded model re-encodes to *identical bytes* and analyzes to
//!   *identical bits*, which the engine's parallel-determinism
//!   guarantees rely on);
//! * every count/index is an LEB128 varint, so the small integers that
//!   dominate graph topology cost one byte;
//! * every variable-length field is length-prefixed and bounds-checked
//!   against structural limits, so corrupted lengths fail with a
//!   precise [`CoreError::Codec`] instead of an allocation bomb.
//!
//! The stream opens with a one-byte **layout version** (currently
//! [`MODEL_CODEC_VERSION`]) so the payload format can evolve
//! independently of the store's envelope version; readers reject
//! unknown layouts up front. Writers emit layout 2; the reader also
//! accepts layout-1 streams (they simply carry no sequential block).
//!
//! Field order mirrors the logical structure: name, configuration,
//! grid geometry, variable layout, PCA bases, timing graph (raw slots,
//! tombstones included — see [`ssta_timing::RawGraphParts`]), and
//! extraction stats. Layout 2 appends an optional sequential-interface
//! block (clock pin + launch/setup/hold constraint arcs), validated on
//! decode against the already-decoded graph and layout so a hostile
//! payload cannot smuggle in arcs referencing unknown pins or foreign
//! variable spaces. The graph's input list is *not* stored: it is
//! fully determined by the `Input(i)` vertex kinds and re-derived on
//! decode, which both saves bytes and makes that invariant
//! unforgeable.

use crate::canonical::CanonicalForm;
use crate::extract::{ConstraintArc, ExtractionStats, SequentialModel, TimingModel};
use crate::params::{ParameterSpec, SstaConfig, VariableLayout};
use crate::spatial::{CorrelationModel, GridGeometry};
use crate::CoreError;
use ssta_math::codec::{ByteReader, ByteWriter, CodecError};
use ssta_math::{Matrix, PcaBasis, PcaOptions};
use ssta_netlist::ProcessParam;
use ssta_timing::{RawGraphParts, TimingGraph, VertexId, VertexKind};

/// Version byte opening every binary model payload written by this
/// build. Layout 2 = layout 1 plus the optional sequential block.
pub const MODEL_CODEC_VERSION: u8 = 2;

/// Oldest layout version the reader still accepts.
pub const MIN_MODEL_CODEC_VERSION: u8 = 1;

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec {
            reason: e.to_string(),
        }
    }
}

/// Encodes a model into the deterministic binary payload.
///
/// Same model in, same bytes out — encoding is a pure function with no
/// iteration-order or formatting freedom, so content-addressed stores
/// and integrity stamps over the payload are stable.
pub fn encode_model(model: &TimingModel) -> Vec<u8> {
    // Pre-size roughly: the graph dominates, ~8 bytes per coefficient.
    let mut w = ByteWriter::with_capacity(1024 + model.edge_count() * 64);
    w.put_u8(MODEL_CODEC_VERSION);
    w.put_str(model.name());
    encode_config(&mut w, model.config());
    encode_geometry(&mut w, model.geometry());
    encode_layout(&mut w, model.layout());
    w.put_usize(model.pca().len());
    for basis in model.pca() {
        encode_pca(&mut w, basis);
    }
    encode_graph(&mut w, model.graph());
    encode_stats(&mut w, model.stats());
    encode_sequential(&mut w, model.sequential());
    w.into_bytes()
}

/// Decodes a binary payload produced by [`encode_model`].
///
/// # Errors
///
/// Returns [`CoreError::Codec`] for truncated or structurally invalid
/// payloads and unknown layout versions, with the byte offset of the
/// first defect.
pub fn decode_model(bytes: &[u8]) -> Result<TimingModel, CoreError> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u8()?;
    if !(MIN_MODEL_CODEC_VERSION..=MODEL_CODEC_VERSION).contains(&version) {
        return Err(CoreError::Codec {
            reason: format!(
                "unknown binary model layout {version}, this build reads \
                 {MIN_MODEL_CODEC_VERSION}..={MODEL_CODEC_VERSION}"
            ),
        });
    }
    let name = r.get_str()?;
    let config = decode_config(&mut r)?;
    let geometry = decode_geometry(&mut r)?;
    let layout = decode_layout(&mut r)?;
    let n_pca = r.get_len(r.remaining())?;
    let mut pca = Vec::with_capacity(n_pca);
    for _ in 0..n_pca {
        pca.push(decode_pca(&mut r)?);
    }
    let graph = decode_graph(&mut r)?;
    let stats = decode_stats(&mut r)?;
    let sequential = if version >= 2 {
        decode_sequential(&mut r)?
    } else {
        None
    };
    r.finish()?;
    if let Some(seq) = &sequential {
        // Stored sequential blocks face the same hostile-input bar as the
        // graph itself: every arc must address a real pin in the model's
        // own variable space, and a violation is a *named* codec error.
        seq.validate(
            graph.inputs().len(),
            graph.outputs().len(),
            config.parameters.len(),
            layout.n_locals(),
        )
        .map_err(|reason| CoreError::Codec {
            reason: format!("stored sequential interface is invalid: {reason}"),
        })?;
    }
    Ok(TimingModel::from_codec_parts(
        name, graph, geometry, layout, pca, config, stats, sequential,
    ))
}

fn encode_config(w: &mut ByteWriter, config: &SstaConfig) {
    w.put_usize(config.parameters.len());
    for p in &config.parameters {
        w.put_u8(p.param.index() as u8);
        w.put_f64(p.sigma_rel);
    }
    let c = &config.correlation;
    w.put_f64(c.global_share);
    w.put_f64(c.local_share);
    w.put_f64(c.random_share);
    w.put_f64(c.decay_per_grid);
    w.put_f64(c.cutoff_grids);
    w.put_f64(config.cell_pitch_um);
    w.put_usize(config.grid_side_cells);
    w.put_f64(config.pca.variance_fraction);
    w.put_f64(config.pca.min_eigenvalue);
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<SstaConfig, CoreError> {
    let n = r.get_len(ProcessParam::ALL.len())?;
    let mut parameters = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = r.get_u8()? as usize;
        let param = *ProcessParam::ALL.get(idx).ok_or_else(|| CoreError::Codec {
            reason: format!("unknown process parameter index {idx}"),
        })?;
        let sigma_rel = r.get_f64()?;
        parameters.push(ParameterSpec { param, sigma_rel });
    }
    let correlation = CorrelationModel {
        global_share: r.get_f64()?,
        local_share: r.get_f64()?,
        random_share: r.get_f64()?,
        decay_per_grid: r.get_f64()?,
        cutoff_grids: r.get_f64()?,
    };
    Ok(SstaConfig {
        parameters,
        correlation,
        cell_pitch_um: r.get_f64()?,
        grid_side_cells: r.get_usize()?,
        pca: PcaOptions {
            variance_fraction: r.get_f64()?,
            min_eigenvalue: r.get_f64()?,
        },
    })
}

fn encode_geometry(w: &mut ByteWriter, g: GridGeometry) {
    let (ox, oy) = g.origin();
    w.put_f64(ox);
    w.put_f64(oy);
    w.put_f64(g.pitch());
    w.put_usize(g.nx());
    w.put_usize(g.ny());
}

fn decode_geometry(r: &mut ByteReader<'_>) -> Result<GridGeometry, CoreError> {
    let origin = (r.get_f64()?, r.get_f64()?);
    let pitch = r.get_f64()?;
    let nx = r.get_usize()?;
    let ny = r.get_usize()?;
    Ok(GridGeometry::from_raw_parts(origin, pitch, nx, ny))
}

fn encode_layout(w: &mut ByteWriter, layout: &VariableLayout) {
    w.put_usize(layout.n_params());
    for p in 0..layout.n_params() {
        w.put_usize(layout.local_range(p).len());
    }
}

fn decode_layout(r: &mut ByteReader<'_>) -> Result<VariableLayout, CoreError> {
    // Structural bounds keep the prefix sum in `VariableLayout::new`
    // far from usize overflow on corrupted counts: parameters are a
    // handful (4 today), local PCA components a few hundred per
    // parameter.
    const MAX_PARAMS: usize = 256;
    const MAX_LOCALS_PER_PARAM: usize = 1 << 32;
    let n = r.get_len(MAX_PARAMS)?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.get_len(MAX_LOCALS_PER_PARAM)?);
    }
    Ok(VariableLayout::new(&counts))
}

fn encode_matrix(w: &mut ByteWriter, m: &Matrix) {
    w.put_usize(m.rows());
    w.put_usize(m.cols());
    for &v in m.as_slice() {
        w.put_f64(v);
    }
}

fn decode_matrix(r: &mut ByteReader<'_>) -> Result<Matrix, CoreError> {
    let rows = r.get_len(r.remaining() / 8)?;
    let cols = r.get_len(r.remaining() / 8)?;
    let n = rows.checked_mul(cols).ok_or_else(|| CoreError::Codec {
        reason: format!("matrix shape {rows}x{cols} overflows"),
    })?;
    if n > r.remaining() / 8 {
        return Err(CoreError::Codec {
            reason: format!(
                "matrix shape {rows}x{cols} needs {} bytes, stream has {}",
                n * 8,
                r.remaining()
            ),
        });
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.get_f64()?);
    }
    Matrix::from_vec(rows, cols, data).map_err(|e| CoreError::Codec {
        reason: format!("stored matrix is inconsistent: {e}"),
    })
}

fn encode_pca(w: &mut ByteWriter, basis: &PcaBasis) {
    encode_matrix(w, basis.transform());
    encode_matrix(w, basis.whiten());
    w.put_f64_slice(basis.eigenvalues());
    w.put_f64(basis.total_variance());
}

fn decode_pca(r: &mut ByteReader<'_>) -> Result<PcaBasis, CoreError> {
    let transform = decode_matrix(r)?;
    let whiten = decode_matrix(r)?;
    let eigenvalues = r.get_f64_vec()?;
    let total_variance = r.get_f64()?;
    PcaBasis::from_raw_parts(transform, whiten, eigenvalues, total_variance).map_err(|e| {
        CoreError::Codec {
            reason: format!("stored PCA basis is inconsistent: {e}"),
        }
    })
}

fn encode_form(w: &mut ByteWriter, form: &CanonicalForm) {
    w.put_f64(form.mean());
    w.put_f64_slice(form.globals());
    w.put_f64_slice(form.locals());
    w.put_f64(form.random());
}

fn decode_form(r: &mut ByteReader<'_>) -> Result<CanonicalForm, CoreError> {
    let nominal = r.get_f64()?;
    let globals = r.get_f64_vec()?;
    let locals = r.get_f64_vec()?;
    let random = r.get_f64()?;
    CanonicalForm::from_parts(nominal, globals, locals, random).map_err(|e| CoreError::Codec {
        reason: format!("stored canonical form is invalid: {e}"),
    })
}

fn encode_graph(w: &mut ByteWriter, graph: &TimingGraph<CanonicalForm>) {
    let raw = graph.to_raw_parts();
    w.put_usize(raw.kinds.len());
    for (kind, &alive) in raw.kinds.iter().zip(&raw.vertex_alive) {
        match kind {
            VertexKind::Internal => w.put_u8(0),
            VertexKind::Input(i) => {
                w.put_u8(1);
                w.put_varint(u64::from(*i));
            }
        }
        w.put_bool(alive);
    }
    w.put_usize(raw.edges.len());
    for (from, to, delay, alive) in &raw.edges {
        w.put_varint(u64::from(from.0));
        w.put_varint(u64::from(to.0));
        w.put_bool(*alive);
        encode_form(w, delay);
    }
    w.put_usize(raw.outputs.len());
    for v in &raw.outputs {
        w.put_varint(u64::from(v.0));
    }
    // raw.inputs is intentionally not stored: the decoder re-derives it
    // from the Input(i) vertex kinds.
}

fn decode_graph(r: &mut ByteReader<'_>) -> Result<TimingGraph<CanonicalForm>, CoreError> {
    let vertex_id = |r: &mut ByteReader<'_>| -> Result<VertexId, CoreError> {
        let v = r.get_varint()?;
        u32::try_from(v)
            .map(VertexId)
            .map_err(|_| CoreError::Codec {
                reason: format!("vertex id {v} exceeds u32"),
            })
    };

    let n_vertices = r.get_len(r.remaining() / 2)?;
    let mut kinds = Vec::with_capacity(n_vertices);
    let mut vertex_alive = Vec::with_capacity(n_vertices);
    let mut inputs: Vec<Option<VertexId>> = Vec::new();
    for slot in 0..n_vertices {
        let kind = match r.get_u8()? {
            0 => VertexKind::Internal,
            1 => {
                let i = r.get_varint()?;
                // Every input index addresses a distinct vertex, so a
                // valid index is always below the vertex count — bound
                // it structurally before sizing `inputs` by it.
                let i = u32::try_from(i)
                    .ok()
                    .filter(|&i| (i as usize) < n_vertices)
                    .ok_or_else(|| CoreError::Codec {
                        reason: format!("input index {i} out of range for {n_vertices} vertices"),
                    })?;
                let idx = i as usize;
                if idx >= inputs.len() {
                    inputs.resize(idx + 1, None);
                }
                if inputs[idx].replace(VertexId(slot as u32)).is_some() {
                    return Err(CoreError::Codec {
                        reason: format!("duplicate input index {idx}"),
                    });
                }
                VertexKind::Input(i)
            }
            t => {
                return Err(CoreError::Codec {
                    reason: format!("unknown vertex kind tag {t}"),
                })
            }
        };
        kinds.push(kind);
        vertex_alive.push(r.get_bool()?);
    }
    let inputs: Vec<VertexId> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            v.ok_or_else(|| CoreError::Codec {
                reason: format!("input index {i} has no vertex"),
            })
        })
        .collect::<Result<_, _>>()?;

    let n_edges = r.get_len(r.remaining() / 19)?; // ≥ 19 bytes per edge slot
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let from = vertex_id(r)?;
        let to = vertex_id(r)?;
        let alive = r.get_bool()?;
        let delay = decode_form(r)?;
        edges.push((from, to, delay, alive));
    }

    let n_outputs = r.get_len(r.remaining())?;
    let mut outputs = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        outputs.push(vertex_id(r)?);
    }

    TimingGraph::from_raw_parts(RawGraphParts {
        kinds,
        vertex_alive,
        edges,
        inputs,
        outputs,
    })
    .map_err(|e| CoreError::Codec {
        reason: format!("stored graph is inconsistent: {e}"),
    })
}

fn encode_sequential(w: &mut ByteWriter, seq: Option<&SequentialModel>) {
    match seq {
        None => w.put_bool(false),
        Some(seq) => {
            w.put_bool(true);
            w.put_str(&seq.clock_pin);
            for arcs in [&seq.launch, &seq.setup, &seq.hold] {
                w.put_usize(arcs.len());
                for arc in arcs {
                    w.put_varint(u64::from(arc.port));
                    encode_form(w, &arc.form);
                }
            }
        }
    }
}

fn decode_sequential(r: &mut ByteReader<'_>) -> Result<Option<SequentialModel>, CoreError> {
    if !r.get_bool()? {
        return Ok(None);
    }
    let clock_pin = r.get_str()?;
    let mut families = [Vec::new(), Vec::new(), Vec::new()];
    for arcs in &mut families {
        // ≥ 19 bytes per arc: 1-byte port varint + an 18-byte minimal
        // canonical form — bounds a corrupted count before allocation.
        let n = r.get_len(r.remaining() / 19)?;
        arcs.reserve(n);
        for _ in 0..n {
            let port = r.get_varint()?;
            let port = u32::try_from(port).map_err(|_| CoreError::Codec {
                reason: format!("constraint arc port {port} exceeds u32"),
            })?;
            let form = decode_form(r)?;
            arcs.push(ConstraintArc { port, form });
        }
    }
    let [launch, setup, hold] = families;
    Ok(Some(SequentialModel {
        clock_pin,
        launch,
        setup,
        hold,
    }))
}

fn encode_stats(w: &mut ByteWriter, s: &ExtractionStats) {
    w.put_usize(s.original_edges);
    w.put_usize(s.original_vertices);
    w.put_usize(s.edges_pruned);
    w.put_usize(s.restored_paths);
    w.put_usize(s.repaired_pairs);
    w.put_usize(s.merge_rounds);
    w.put_usize(s.serial_merges);
    w.put_usize(s.parallel_merges);
    w.put_usize(s.model_edges);
    w.put_usize(s.model_vertices);
    w.put_f64(s.extraction_seconds);
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<ExtractionStats, CoreError> {
    Ok(ExtractionStats {
        original_edges: r.get_usize()?,
        original_vertices: r.get_usize()?,
        edges_pruned: r.get_usize()?,
        restored_paths: r.get_usize()?,
        repaired_pairs: r.get_usize()?,
        merge_rounds: r.get_usize()?,
        serial_merges: r.get_usize()?,
        parallel_merges: r.get_usize()?,
        model_edges: r.get_usize()?,
        model_vertices: r.get_usize()?,
        extraction_seconds: r.get_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleContext;
    use ssta_netlist::generators;

    fn model(bits: usize) -> TimingModel {
        let n = generators::ripple_carry_adder(bits).unwrap();
        let ctx = ModuleContext::characterize(n, &SstaConfig::paper()).unwrap();
        ctx.extract_model(&crate::ExtractOptions::default())
            .unwrap()
    }

    #[test]
    fn encode_is_deterministic() {
        let m = model(4);
        assert_eq!(encode_model(&m), encode_model(&m));
    }

    #[test]
    fn round_trip_reencodes_to_identical_bytes() {
        let m = model(5);
        let bytes = encode_model(&m);
        let back = decode_model(&bytes).unwrap();
        assert_eq!(
            encode_model(&back),
            bytes,
            "decode ∘ encode must be identity"
        );
        assert_eq!(back.name(), m.name());
        assert_eq!(back.edge_count(), m.edge_count());
        assert_eq!(back.vertex_count(), m.vertex_count());
        assert_eq!(back.config(), m.config());
        assert_eq!(back.layout(), m.layout());
    }

    #[test]
    fn round_trip_preserves_delay_matrix_bits() {
        let m = model(4);
        let back = decode_model(&encode_model(&m)).unwrap();
        let a = m.delay_matrix().unwrap();
        let b = back.delay_matrix().unwrap();
        let (worst_mean, mismatched) = a.compare_with(&b, |d| d.mean());
        assert_eq!(mismatched, 0);
        assert_eq!(worst_mean, 0.0);
        let (worst_sigma, _) = a.compare_with(&b, |d| d.std_dev());
        assert_eq!(worst_sigma, 0.0);
    }

    #[test]
    fn binary_payload_is_much_smaller_than_json() {
        let m = model(6);
        let json = serde_json::to_vec(&m).unwrap();
        let binary = encode_model(&m);
        assert!(
            binary.len() * 2 <= json.len(),
            "binary {} vs JSON {}: expected ≤ 50%",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn decoder_rejects_unknown_layout_version() {
        let m = model(2);
        let mut bytes = encode_model(&m);
        bytes[0] = MODEL_CODEC_VERSION + 1;
        assert!(matches!(
            decode_model(&bytes),
            Err(CoreError::Codec { reason }) if reason.contains("layout")
        ));
    }

    #[test]
    fn decoder_rejects_truncation_at_every_prefix_length() {
        let m = model(2);
        let bytes = encode_model(&m);
        // Every strict prefix must fail cleanly, never panic. Step a few
        // bytes at a time to keep the test fast.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                decode_model(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn decoder_bounds_hostile_input_index() {
        // A vertex claiming input index u32::MAX must be rejected by the
        // structural bound (index < vertex count), not amplified into a
        // multi-gigabyte `inputs` allocation.
        let m = model(2);
        let mut w = ByteWriter::new();
        w.put_u8(MODEL_CODEC_VERSION);
        w.put_str(m.name());
        encode_config(&mut w, m.config());
        encode_geometry(&mut w, m.geometry());
        encode_layout(&mut w, m.layout());
        w.put_usize(0); // no PCA bases
        w.put_usize(1); // one vertex slot...
        w.put_u8(1); // ...of Input kind...
        w.put_varint(u64::from(u32::MAX)); // ...with a hostile index
        w.put_bool(true);
        assert!(matches!(
            decode_model(&w.into_bytes()),
            Err(CoreError::Codec { reason }) if reason.contains("out of range")
        ));
    }

    #[test]
    fn decoder_bounds_hostile_layout_counts() {
        // Layout counts near u64::MAX must fail as a codec error, not
        // overflow the prefix sum inside VariableLayout::new.
        let m = model(2);
        let mut w = ByteWriter::new();
        w.put_u8(MODEL_CODEC_VERSION);
        w.put_str(m.name());
        encode_config(&mut w, m.config());
        encode_geometry(&mut w, m.geometry());
        w.put_usize(2); // two parameters...
        w.put_varint(u64::MAX); // ...with an overflowing count
        w.put_varint(1);
        assert!(matches!(
            decode_model(&w.into_bytes()),
            Err(CoreError::Codec { reason }) if reason.contains("exceeds limit")
        ));
    }

    fn registered_model() -> TimingModel {
        let stages = generators::registered_pipeline(&["rca4"], "DFF").unwrap();
        let ctx =
            ModuleContext::characterize(stages[0].core().clone(), &SstaConfig::paper()).unwrap();
        crate::extract::extract_registered(
            &ctx,
            stages[0].register(),
            &crate::ExtractOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn sequential_block_round_trips_bit_exactly() {
        let m = registered_model();
        let bytes = encode_model(&m);
        let back = decode_model(&bytes).unwrap();
        assert_eq!(encode_model(&back), bytes);
        assert_eq!(back.sequential(), m.sequential());
    }

    #[test]
    fn decoder_accepts_layout_one_without_sequential_block() {
        // A layout-1 stream is exactly a layout-2 stream for a
        // combinational model minus the trailing presence flag.
        let m = model(3);
        let mut bytes = encode_model(&m);
        assert_eq!(
            bytes.pop(),
            Some(0),
            "combinational v2 ends with absent flag"
        );
        bytes[0] = 1;
        let back = decode_model(&bytes).unwrap();
        assert!(back.sequential().is_none());
        assert_eq!(back.name(), m.name());
        assert_eq!(back.edge_count(), m.edge_count());
    }

    #[test]
    fn decoder_names_unknown_constraint_pins() {
        // Corrupt a stored sequential block to reference a pin past the
        // interface: the decoder must reject it with the pin number, not
        // admit a model whose arcs silently misbehave downstream.
        let m = registered_model();
        let seq = m.sequential().unwrap();
        let mut hostile = seq.clone();
        hostile.setup[0].port = 40_000;
        let mut w = ByteWriter::new();
        w.put_u8(MODEL_CODEC_VERSION);
        w.put_str(m.name());
        encode_config(&mut w, m.config());
        encode_geometry(&mut w, m.geometry());
        encode_layout(&mut w, m.layout());
        w.put_usize(m.pca().len());
        for basis in m.pca() {
            encode_pca(&mut w, basis);
        }
        encode_graph(&mut w, m.graph());
        encode_stats(&mut w, m.stats());
        encode_sequential(&mut w, Some(&hostile));
        assert!(matches!(
            decode_model(&w.into_bytes()),
            Err(CoreError::Codec { reason })
                if reason.contains("unknown pin 40000") && reason.contains("sequential")
        ));
    }

    #[test]
    fn decoder_bounds_hostile_arc_count() {
        // A corrupted arc count near u64::MAX must fail as a length
        // error before any allocation, like every other stored length.
        let m = registered_model();
        let bytes = encode_model(&m);
        let seq_flag = {
            // The sequential block starts right after the stats; find it
            // by re-encoding everything before it.
            let mut w = ByteWriter::new();
            w.put_u8(MODEL_CODEC_VERSION);
            w.put_str(m.name());
            encode_config(&mut w, m.config());
            encode_geometry(&mut w, m.geometry());
            encode_layout(&mut w, m.layout());
            w.put_usize(m.pca().len());
            for basis in m.pca() {
                encode_pca(&mut w, basis);
            }
            encode_graph(&mut w, m.graph());
            encode_stats(&mut w, m.stats());
            w.into_bytes().len()
        };
        let mut w = ByteWriter::new();
        for &b in &bytes[..seq_flag] {
            w.put_u8(b);
        }
        w.put_bool(true);
        w.put_str("clk");
        w.put_varint(u64::MAX); // hostile launch-arc count
        assert!(matches!(
            decode_model(&w.into_bytes()),
            Err(CoreError::Codec { reason }) if reason.contains("exceeds limit")
        ));
    }

    #[test]
    fn decoder_rejects_trailing_garbage() {
        let m = model(2);
        let mut bytes = encode_model(&m);
        bytes.push(0);
        assert!(matches!(
            decode_model(&bytes),
            Err(CoreError::Codec { reason }) if reason.contains("trailing")
        ));
    }
}
