//! Gray-box statistical timing-model extraction (Section IV).
//!
//! Pipeline (Fig. 3 of the paper):
//!
//! 1. compute the maximum criticality `c_m` of every edge;
//! 2. remove edges with `c_m < δ`;
//! 3. apply serial and parallel merge operations iteratively.
//!
//! Step 2 can — rarely — disconnect an input/output pair whose paths all
//! consist of individually sub-threshold edges. The paper ignores this;
//! [`ExtractOptions::ensure_connectivity`] (default on) restores the
//! nominally-longest path for any pair that would lose connectivity, so a
//! model never reports "no path" where the module had one.

mod merge;
mod model;
mod sequential;

pub use merge::{reduce, MergeStats};
pub use model::{ExtractionStats, TimingModel};
pub use sequential::{extract_registered, ConstraintArc, SequentialModel};

use crate::canonical::CanonicalForm;
use crate::criticality::{edge_criticalities, CriticalityOptions};
use crate::module::ModuleContext;
use crate::CoreError;
use ssta_timing::{EdgeId, TimingGraph, VertexId};
use std::time::Instant;

/// Options for [`extract`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractOptions {
    /// Criticality threshold δ; edges with `c_m < δ` are pruned. The paper
    /// uses 0.05.
    pub delta: f64,
    /// Restore the nominally-longest path of any input/output pair that
    /// pruning would disconnect.
    pub ensure_connectivity: bool,
    /// Accuracy repair (extension beyond the paper): after pruning, pairs
    /// whose analytic mean delay in the kept subgraph falls short of the
    /// original by more than this relative tolerance get their edges
    /// re-admitted at progressively lower pair-specific thresholds. This
    /// protects against pathological reconvergence where *every* path of a
    /// pair is individually sub-threshold — a case the paper's benchmarks
    /// do not exhibit but heavily reconvergent circuits do. `None`
    /// disables the repair (the paper's exact algorithm).
    pub accuracy_repair: Option<f64>,
    /// Bound on accuracy-repair rounds.
    pub max_repair_rounds: usize,
    /// Settings for the criticality engine.
    pub criticality: CriticalityOptions,
    /// Safety bound on merge iterations.
    pub max_merge_rounds: usize,
}

impl Default for ExtractOptions {
    /// The paper's settings (δ = 0.05, connectivity repair) plus accuracy
    /// repair at a 2 % mean tolerance.
    fn default() -> Self {
        ExtractOptions {
            delta: 0.05,
            ensure_connectivity: true,
            accuracy_repair: Some(0.02),
            max_repair_rounds: 4,
            criticality: CriticalityOptions::default(),
            max_merge_rounds: 64,
        }
    }
}

impl ExtractOptions {
    /// The paper's algorithm exactly: no accuracy repair, no connectivity
    /// restoration.
    pub fn paper_exact() -> Self {
        ExtractOptions {
            ensure_connectivity: false,
            accuracy_repair: None,
            ..Default::default()
        }
    }
}

/// Extracts a compressed timing model from a characterized module.
///
/// # Errors
///
/// Returns [`CoreError::Config`] for δ outside `[0, 1]` and propagates
/// criticality/graph errors.
pub fn extract(ctx: &ModuleContext, options: &ExtractOptions) -> Result<TimingModel, CoreError> {
    if !(0.0..=1.0).contains(&options.delta) {
        return Err(CoreError::Config {
            reason: format!("delta {} outside [0, 1]", options.delta),
        });
    }
    let started = Instant::now();
    let graph = ctx.graph();
    let original_edges = graph.n_edges();
    let original_vertices = graph.n_vertices();

    // Step 1: maximum criticality per edge.
    let cms = edge_criticalities(graph, &ctx.zero(), &options.criticality)?;

    // Step 2: decide the keep set.
    let mut keep: Vec<bool> = vec![false; cms.len()];
    for (id, _) in graph.edges_iter() {
        keep[id.0 as usize] = cms[id.0 as usize] >= options.delta;
    }
    let mut restored_paths = 0;
    if options.ensure_connectivity {
        restored_paths = repair_connectivity(graph, &mut keep)?;
    }
    let mut repaired_pairs = 0;
    if let Some(tolerance) = options.accuracy_repair {
        repaired_pairs = repair_accuracy(
            ctx,
            &mut keep,
            tolerance,
            options.delta,
            options.max_repair_rounds,
        )?;
    }

    // Materialize the pruned graph.
    let mut pruned = graph.clone();
    let to_remove: Vec<EdgeId> = pruned
        .edges_iter()
        .filter(|(id, _)| !keep[id.0 as usize])
        .map(|(id, _)| id)
        .collect();
    let edges_pruned = to_remove.len();
    for e in to_remove {
        pruned.remove_edge(e);
    }
    drop_dead_vertices(&mut pruned);

    // Step 3: merge to fixpoint.
    let merge_stats = reduce(&mut pruned, options.max_merge_rounds);

    let (model_graph, _) = pruned.compact();
    let stats = ExtractionStats {
        original_edges,
        original_vertices,
        edges_pruned,
        restored_paths,
        repaired_pairs,
        merge_rounds: merge_stats.rounds,
        serial_merges: merge_stats.serial_merges,
        parallel_merges: merge_stats.parallel_merges,
        model_edges: model_graph.n_edges(),
        model_vertices: model_graph.n_vertices(),
        extraction_seconds: started.elapsed().as_secs_f64(),
    };
    Ok(TimingModel::new(ctx, model_graph, stats))
}

/// For every input/output pair connected in the full graph but not in the
/// keep set, marks the nominally-longest path's edges as kept. Returns the
/// number of restored pairs.
fn repair_connectivity(
    graph: &TimingGraph<CanonicalForm>,
    keep: &mut [bool],
) -> Result<usize, CoreError> {
    let outputs: Vec<VertexId> = {
        let mut o = graph.outputs().to_vec();
        o.sort();
        o.dedup();
        o
    };
    // One topological sort serves every pass below (two per input).
    let order = graph.topo_order().map_err(CoreError::Timing)?;
    let mut restored = 0;
    for &vi in graph.inputs() {
        // Nominal arrival + connectivity in the full graph.
        let full = nominal_forward(graph, &order, vi, None);
        // Connectivity in the kept subgraph.
        let kept = nominal_forward(graph, &order, vi, Some(keep));
        for &vj in &outputs {
            if full[vj.0 as usize].is_some() && kept[vj.0 as usize].is_none() {
                restore_path(graph, &full, vi, vj, keep);
                restored += 1;
            }
        }
    }
    Ok(restored)
}

/// Scalar forward propagation on nominal delays over a precomputed
/// topological order, optionally restricted to kept edges. Returns
/// per-vertex `Option<(arrival, predecessor edge)>`.
fn nominal_forward(
    graph: &TimingGraph<CanonicalForm>,
    order: &[VertexId],
    source: VertexId,
    keep: Option<&[bool]>,
) -> Vec<Option<(f64, Option<EdgeId>)>> {
    let mut arr: Vec<Option<(f64, Option<EdgeId>)>> = vec![None; graph.vertex_bound()];
    arr[source.0 as usize] = Some((0.0, None));
    for &v in order {
        let Some((av, _)) = arr[v.0 as usize] else {
            continue;
        };
        for e in graph.out_edges(v) {
            if let Some(keep) = keep {
                if !keep[e.0 as usize] {
                    continue;
                }
            }
            let edge = graph.edge(e);
            let cand = av + edge.delay.mean();
            let slot = &mut arr[edge.to.0 as usize];
            if slot.is_none_or(|(prev, _)| cand > prev) {
                *slot = Some((cand, Some(e)));
            }
        }
    }
    arr
}

/// Accuracy repair: for every pair whose kept-subgraph analytic mean falls
/// more than `tolerance` (relative) below the full graph's, re-admit that
/// pair's edges at a progressively lower pair-specific criticality
/// threshold. Returns the number of distinct pairs repaired.
fn repair_accuracy(
    ctx: &ModuleContext,
    keep: &mut [bool],
    tolerance: f64,
    delta: f64,
    max_rounds: usize,
) -> Result<usize, CoreError> {
    let graph = ctx.graph();
    let zero = ctx.zero();
    let outputs: Vec<VertexId> = {
        let mut o = graph.outputs().to_vec();
        o.sort();
        o.dedup();
        o
    };
    // One levelization + one topological sort serve every pass below:
    // the reference loop, every repair round's masked sweeps, and the
    // per-pair criticality probes.
    let schedule = ssta_timing::LevelSchedule::build(graph).map_err(CoreError::Timing)?;
    let order = graph.topo_order().map_err(CoreError::Timing)?;

    // Reference means from the full graph, one forward pass per input.
    let mut reference: Vec<Vec<Option<f64>>> = Vec::with_capacity(graph.inputs().len());
    for &vi in graph.inputs() {
        let arr = ssta_timing::levels::forward(graph, &schedule, &[(vi, zero.clone())], 1)
            .map_err(CoreError::Timing)?;
        reference.push(
            outputs
                .iter()
                .map(|&vj| arr[vj.0 as usize].as_ref().map(|f| f.mean()))
                .collect(),
        );
    }

    let mut repaired = std::collections::HashSet::new();
    for round in 0..max_rounds {
        let mut failing: Vec<(usize, usize)> = Vec::new();
        for (i, &vi) in graph.inputs().iter().enumerate() {
            let arr = masked_forward(graph, &order, vi, &zero, keep);
            for (j, &vj) in outputs.iter().enumerate() {
                let Some(want) = reference[i][j] else {
                    continue;
                };
                let got = arr[vj.0 as usize].as_ref().map_or(0.0, |f| f.mean());
                if (want - got) / want > tolerance {
                    failing.push((i, j));
                }
            }
        }
        if failing.is_empty() {
            break;
        }
        let threshold = delta / 4.0f64.powi(round as i32 + 1);
        for &(i, j) in &failing {
            let cij = crate::criticality::pair_criticalities_with(
                graph,
                &schedule,
                &zero,
                graph.inputs()[i],
                outputs[j],
            )?;
            for (slot, &c) in cij.iter().enumerate() {
                if c >= threshold {
                    keep[slot] = true;
                }
            }
            repaired.insert((i, j));
        }
    }
    Ok(repaired.len())
}

/// Canonical-form forward propagation over a precomputed topological
/// order, restricted to kept edges.
fn masked_forward(
    graph: &TimingGraph<CanonicalForm>,
    order: &[VertexId],
    source: VertexId,
    zero: &CanonicalForm,
    keep: &[bool],
) -> Vec<Option<CanonicalForm>> {
    let mut arr: Vec<Option<CanonicalForm>> = vec![None; graph.vertex_bound()];
    arr[source.0 as usize] = Some(zero.clone());
    for &v in order {
        // Take instead of clone (canonical forms carry full coefficient
        // vectors); a DAG has no self-edges, so the slot is never read
        // while vacated.
        let Some(at_v) = arr[v.0 as usize].take() else {
            continue;
        };
        for e in graph.out_edges(v) {
            if !keep[e.0 as usize] {
                continue;
            }
            let edge = graph.edge(e);
            let cand = at_v.sum(&edge.delay);
            let slot = &mut arr[edge.to.0 as usize];
            *slot = Some(match slot.take() {
                Some(prev) => prev.maximum(&cand),
                None => cand,
            });
        }
        arr[v.0 as usize] = Some(at_v);
    }
    arr
}

/// Walks the predecessor chain from `vj` back to `vi`, marking edges kept.
fn restore_path(
    graph: &TimingGraph<CanonicalForm>,
    full: &[Option<(f64, Option<EdgeId>)>],
    vi: VertexId,
    vj: VertexId,
    keep: &mut [bool],
) {
    let mut v = vj;
    while v != vi {
        let Some((_, Some(e))) = full[v.0 as usize] else {
            break; // defensive: chain ended unexpectedly
        };
        keep[e.0 as usize] = true;
        v = graph.edge(e).from;
    }
}

/// Removes vertices (and their incident edges) that are not on any live
/// input-to-output path.
fn drop_dead_vertices(graph: &mut TimingGraph<CanonicalForm>) {
    let fwd = graph.reachable_from_inputs();
    let bwd = graph.reaches_outputs();
    let dead: Vec<VertexId> = graph
        .vertices()
        .filter(|v| !(fwd[v.0 as usize] && bwd[v.0 as usize]))
        .collect();
    for &v in &dead {
        let incident: Vec<EdgeId> = graph.in_edges(v).chain(graph.out_edges(v)).collect();
        for e in incident {
            graph.remove_edge(e);
        }
    }
    for v in dead {
        // Inputs/outputs are always on some path in valid modules; if an
        // input truly reaches nothing it must stay (it is a port).
        if graph.inputs().contains(&v) || graph.outputs().contains(&v) {
            continue;
        }
        graph.remove_vertex(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleContext;
    use crate::params::SstaConfig;
    use ssta_netlist::generators;

    fn ctx(name: &str) -> ModuleContext {
        let n = generators::iscas85(name).unwrap();
        ModuleContext::characterize(n, &SstaConfig::paper()).unwrap()
    }

    #[test]
    fn extraction_compresses_c432() {
        let ctx = ctx("c432");
        let model = extract(&ctx, &ExtractOptions::default()).unwrap();
        let stats = model.stats();
        assert!(stats.model_edges < stats.original_edges);
        assert!(stats.model_vertices < stats.original_vertices);
        // The paper reports pe in the 9-43% band across ISCAS85.
        let pe = stats.model_edges as f64 / stats.original_edges as f64;
        assert!(pe < 0.8, "pe = {pe}");
    }

    #[test]
    fn model_preserves_port_counts() {
        let ctx = ctx("c432");
        let model = extract(&ctx, &ExtractOptions::default()).unwrap();
        assert_eq!(model.n_inputs(), ctx.netlist().n_inputs());
        assert_eq!(model.n_outputs(), ctx.netlist().n_outputs());
    }

    #[test]
    fn model_preserves_connectivity() {
        let ctx = ctx("c432");
        let model = extract(&ctx, &ExtractOptions::default()).unwrap();
        let orig = ctx.delay_matrix().unwrap();
        let reduced = model.delay_matrix().unwrap();
        let (_, mismatched) = orig.compare_with(&reduced, |d| d.mean());
        assert_eq!(mismatched, 0, "connectivity must be preserved");
    }

    #[test]
    fn model_delay_matrix_is_accurate() {
        let ctx = ctx("c432");
        let model = extract(&ctx, &ExtractOptions::default()).unwrap();
        let orig = ctx.delay_matrix().unwrap();
        let reduced = model.delay_matrix().unwrap();
        // Relative mean error per pair within ~2% (paper: < 1.3% vs MC).
        for (i, j, d) in orig.iter() {
            let r = reduced.get(i, j).expect("connectivity preserved");
            let rel = (d.mean() - r.mean()).abs() / d.mean();
            assert!(rel < 0.02, "pair ({i},{j}) mean error {rel}");
            let rel_sigma = (d.std_dev() - r.std_dev()).abs() / d.std_dev();
            assert!(rel_sigma < 0.05, "pair ({i},{j}) sigma error {rel_sigma}");
        }
    }

    #[test]
    fn delta_zero_keeps_connectivity_and_only_merges() {
        let ctx = ctx("c432");
        let model = extract(
            &ctx,
            &ExtractOptions {
                delta: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        // With no pruning, drift comes only from re-associating Clark max
        // operations during merges (Clark's max is not associative); it
        // must stay well below 1% of each pair delay.
        let orig = ctx.delay_matrix().unwrap();
        let reduced = model.delay_matrix().unwrap();
        let (_, mismatched) = orig.compare_with(&reduced, |d| d.mean());
        assert_eq!(mismatched, 0);
        for (i, j, d) in orig.iter() {
            let r = reduced.get(i, j).expect("connectivity preserved");
            let rel = (d.mean() - r.mean()).abs() / d.mean();
            assert!(rel < 0.01, "pair ({i},{j}) mean drift {rel}");
        }
    }

    #[test]
    fn larger_delta_gives_smaller_model() {
        // Monotonicity holds for the paper's raw algorithm (the accuracy
        // repair deliberately counteracts over-pruning, so it is disabled
        // here).
        let ctx = ctx("c432");
        let small = extract(
            &ctx,
            &ExtractOptions {
                delta: 0.01,
                accuracy_repair: None,
                ..Default::default()
            },
        )
        .unwrap();
        let large = extract(
            &ctx,
            &ExtractOptions {
                delta: 0.3,
                accuracy_repair: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(large.edge_count() <= small.edge_count());
    }

    #[test]
    fn extraction_is_bit_deterministic() {
        // The engine content-addresses models and reproduces them from
        // cache, and parallel/serial engine runs must agree bit-exactly —
        // so two extractions of the same inputs must produce *identical*
        // model graphs (not merely statistically equivalent ones).
        let a = extract(&ctx("c432"), &ExtractOptions::default()).unwrap();
        let b = extract(&ctx("c432"), &ExtractOptions::default()).unwrap();
        let ga = serde_json::to_string(a.graph()).unwrap();
        let gb = serde_json::to_string(b.graph()).unwrap();
        assert_eq!(ga, gb, "model graphs must be bit-identical");
    }

    #[test]
    fn invalid_delta_is_rejected() {
        let ctx = ctx("c432");
        assert!(extract(
            &ctx,
            &ExtractOptions {
                delta: 1.5,
                ..Default::default()
            }
        )
        .is_err());
    }
}
