//! Serial and parallel merge operations (Section IV-A, Figs. 1–2).
//!
//! Both operations preserve the input/output delay matrix exactly (up to
//! the `max` approximation already inherent in SSTA):
//!
//! * **parallel merge** — edges sharing source and sink collapse into one
//!   edge carrying the statistical max of their delays;
//! * **serial merge** — an internal vertex with a single fan-in edge
//!   (or symmetrically a single fan-out edge) is bypassed: its other-side
//!   edges are re-sourced across it with summed delays, and the vertex is
//!   removed.
//!
//! Applied to fixpoint, these implement the graph-reduction style of
//! Kobayashi/Malik (TCAD'97) and Moon et al. (DAC'02) that the paper
//! adopts.

use crate::canonical::CanonicalForm;
use ssta_timing::{EdgeId, TimingGraph, VertexId};
use std::collections::HashMap;

/// Counters describing one reduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Vertices removed by serial merges.
    pub serial_merges: usize,
    /// Edge groups collapsed by parallel merges.
    pub parallel_merges: usize,
}

/// Reduces the graph in place until no merge applies (or the round budget
/// is exhausted). Input and output vertices are never merged away.
pub fn reduce(graph: &mut TimingGraph<CanonicalForm>, max_rounds: usize) -> MergeStats {
    let mut stats = MergeStats::default();
    for _ in 0..max_rounds {
        let parallel = parallel_merge_pass(graph);
        let serial = serial_merge_pass(graph);
        stats.parallel_merges += parallel;
        stats.serial_merges += serial;
        stats.rounds += 1;
        if parallel == 0 && serial == 0 {
            break;
        }
    }
    stats
}

/// Collapses every group of parallel edges into a single max edge.
/// Returns the number of groups collapsed.
fn parallel_merge_pass(graph: &mut TimingGraph<CanonicalForm>) -> usize {
    let vertices: Vec<VertexId> = graph.vertices().collect();
    let mut merged = 0;
    for v in vertices {
        // Group live out-edges by sink. The groups must be processed in a
        // deterministic order — extraction results are content-addressed
        // and reproduced bit-exactly from cache, so HashMap iteration
        // order (which varies per process) must not leak into the merge
        // order and thereby into Clark max association.
        let mut groups: HashMap<VertexId, Vec<EdgeId>> = HashMap::new();
        for e in graph.out_edges(v) {
            groups.entry(graph.edge(e).to).or_default().push(e);
        }
        let mut groups: Vec<(VertexId, Vec<EdgeId>)> = groups.into_iter().collect();
        groups.sort_unstable_by_key(|&(to, _)| to);
        for (to, edges) in groups {
            if edges.len() < 2 {
                continue;
            }
            let mut delay = graph.edge(edges[0]).delay.clone();
            for &e in &edges[1..] {
                delay = delay.maximum(&graph.edge(e).delay);
            }
            for e in edges {
                graph.remove_edge(e);
            }
            graph.add_edge(v, to, delay);
            merged += 1;
        }
    }
    merged
}

/// Bypasses internal vertices with a single fan-in (forward direction of
/// Fig. 1) or a single fan-out (reverse direction). Returns the number of
/// vertices removed.
fn serial_merge_pass(graph: &mut TimingGraph<CanonicalForm>) -> usize {
    let candidates: Vec<VertexId> = graph.vertices().filter(|&v| !is_port(graph, v)).collect();
    let mut removed = 0;
    for v in candidates {
        if !graph.is_alive(v) {
            continue;
        }
        let indeg = graph.in_degree(v);
        let outdeg = graph.out_degree(v);
        if indeg == 0 || outdeg == 0 {
            // Dead-end vertex (can appear mid-reduction): drop its edges
            // and the vertex. It cannot contribute to any I/O path.
            let incident: Vec<EdgeId> = graph.in_edges(v).chain(graph.out_edges(v)).collect();
            for e in incident {
                graph.remove_edge(e);
            }
            graph.remove_vertex(v);
            removed += 1;
            continue;
        }
        if indeg == 1 {
            let e_in = graph.in_edges(v).next().expect("indeg 1");
            let (u, d_in) = {
                let e = graph.edge(e_in);
                (e.from, e.delay.clone())
            };
            if u == v {
                continue; // self-loop would be a cycle; topo order forbids it
            }
            let outs: Vec<EdgeId> = graph.out_edges(v).collect();
            for e in outs {
                let (w, d) = {
                    let edge = graph.edge(e);
                    (edge.to, edge.delay.clone())
                };
                graph.add_edge(u, w, d_in.sum(&d));
                graph.remove_edge(e);
            }
            graph.remove_edge(e_in);
            graph.remove_vertex(v);
            removed += 1;
        } else if outdeg == 1 {
            let e_out = graph.out_edges(v).next().expect("outdeg 1");
            let (w, d_out) = {
                let e = graph.edge(e_out);
                (e.to, e.delay.clone())
            };
            if w == v {
                continue;
            }
            let ins: Vec<EdgeId> = graph.in_edges(v).collect();
            for e in ins {
                let (u, d) = {
                    let edge = graph.edge(e);
                    (edge.from, edge.delay.clone())
                };
                graph.add_edge(u, w, d.sum(&d_out));
                graph.remove_edge(e);
            }
            graph.remove_edge(e_out);
            graph.remove_vertex(v);
            removed += 1;
        }
    }
    removed
}

fn is_port(graph: &TimingGraph<CanonicalForm>, v: VertexId) -> bool {
    matches!(graph.kind(v), ssta_timing::VertexKind::Input(_)) || graph.is_output(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_timing::allpairs;

    fn constant(x: f64) -> CanonicalForm {
        CanonicalForm::constant(x, 1, 2)
    }

    fn zero() -> CanonicalForm {
        constant(0.0)
    }

    #[test]
    fn parallel_edges_collapse_to_max() {
        let mut g: TimingGraph<CanonicalForm> = TimingGraph::new();
        let i = g.add_input();
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, o, constant(3.0));
        g.add_edge(i, o, constant(7.0));
        g.add_edge(i, o, constant(5.0));
        let stats = reduce(&mut g, 8);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(stats.parallel_merges, 1);
        let m = allpairs::delay_matrix(&g, zero).unwrap();
        assert_eq!(m.get(0, 0).unwrap().mean(), 7.0);
    }

    #[test]
    fn serial_chain_collapses_to_single_edge() {
        let mut g: TimingGraph<CanonicalForm> = TimingGraph::new();
        let i = g.add_input();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, a, constant(1.0));
        g.add_edge(a, b, constant(2.0));
        g.add_edge(b, o, constant(3.0));
        let stats = reduce(&mut g, 8);
        assert_eq!(g.n_vertices(), 2, "only ports remain");
        assert_eq!(g.n_edges(), 1);
        assert_eq!(stats.serial_merges, 2);
        let m = allpairs::delay_matrix(&g, zero).unwrap();
        assert_eq!(m.get(0, 0).unwrap().mean(), 6.0);
    }

    #[test]
    fn diamond_reduces_but_keeps_delay_matrix() {
        let mut g: TimingGraph<CanonicalForm> = TimingGraph::new();
        let i = g.add_input();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, a, constant(1.0));
        g.add_edge(i, b, constant(2.0));
        g.add_edge(a, o, constant(3.0));
        g.add_edge(b, o, constant(1.0));
        let before = allpairs::delay_matrix(&g, zero).unwrap();
        reduce(&mut g, 16);
        let after = allpairs::delay_matrix(&g, zero).unwrap();
        let (worst, mismatched) = before.compare_with(&after, |d| d.mean());
        assert_eq!(mismatched, 0);
        assert!(worst < 1e-12);
        // Fully reducible: a and b both have in-degree 1.
        assert_eq!(g.n_vertices(), 2);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn ports_are_never_merged() {
        // input -> output directly with a mid vertex that is an output.
        let mut g: TimingGraph<CanonicalForm> = TimingGraph::new();
        let i = g.add_input();
        let mid = g.add_vertex();
        let o = g.add_vertex();
        g.mark_output(mid); // mid is an output port AND fans out
        g.mark_output(o);
        g.add_edge(i, mid, constant(1.0));
        g.add_edge(mid, o, constant(2.0));
        reduce(&mut g, 8);
        assert!(g.is_alive(mid), "output vertex must survive");
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn dead_end_vertices_are_cleaned_up() {
        let mut g: TimingGraph<CanonicalForm> = TimingGraph::new();
        let i = g.add_input();
        let stub = g.add_vertex(); // no outgoing edges -> dead end
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, stub, constant(1.0));
        g.add_edge(i, o, constant(2.0));
        reduce(&mut g, 8);
        assert!(!g.is_alive(stub));
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn statistical_parallel_merge_uses_clark() {
        let mut g: TimingGraph<CanonicalForm> = TimingGraph::new();
        let i = g.add_input();
        let o = g.add_vertex();
        g.mark_output(o);
        let a = CanonicalForm::from_parts(10.0, vec![1.0], vec![0.0, 0.0], 1.0).unwrap();
        let b = CanonicalForm::from_parts(10.0, vec![0.0], vec![1.0, 0.0], 1.0).unwrap();
        let expect = a.maximum(&b);
        g.add_edge(i, o, a);
        g.add_edge(i, o, b);
        reduce(&mut g, 4);
        let (_, e) = g.edges_iter().next().unwrap();
        assert_eq!(e.delay, expect);
    }
}
