//! The extracted gray-box statistical timing model.
//!
//! This is the artifact an IP vendor would ship instead of a netlist: a
//! compressed timing graph with the same ports and (statistically) the
//! same input/output delay matrix, plus the spatial metadata — grid
//! geometry and PCA bases — that the hierarchical variable-replacement
//! step needs to re-correlate the model inside a larger design. The whole
//! structure is serializable (`serde`), which the `ip_model_handoff`
//! example exercises end to end.

use crate::canonical::CanonicalForm;
use crate::extract::SequentialModel;
use crate::module::ModuleContext;
use crate::params::{SstaConfig, VariableLayout};
use crate::spatial::GridGeometry;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use ssta_math::PcaBasis;
use ssta_timing::{allpairs, DelayMatrix, TimingGraph};

/// Size/effort accounting of one extraction run — the raw material of the
/// paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtractionStats {
    /// Edges in the original timing graph (`Eo`).
    pub original_edges: usize,
    /// Vertices in the original timing graph (`Vo`).
    pub original_vertices: usize,
    /// Edges dropped by the criticality threshold.
    pub edges_pruned: usize,
    /// Input/output pairs whose nominal path had to be restored.
    pub restored_paths: usize,
    /// Input/output pairs re-admitted by the accuracy-repair extension.
    pub repaired_pairs: usize,
    /// Merge fixpoint rounds.
    pub merge_rounds: usize,
    /// Vertices removed by serial merges.
    pub serial_merges: usize,
    /// Edge groups collapsed by parallel merges.
    pub parallel_merges: usize,
    /// Edges in the extracted model (`Em`).
    pub model_edges: usize,
    /// Vertices in the extracted model (`Vm`).
    pub model_vertices: usize,
    /// Wall-clock extraction time (`T` in Table I).
    pub extraction_seconds: f64,
}

impl ExtractionStats {
    /// Edge compression ratio `pe = Em / Eo`.
    pub fn edge_ratio(&self) -> f64 {
        self.model_edges as f64 / self.original_edges.max(1) as f64
    }

    /// Vertex compression ratio `pv = Vm / Vo`.
    pub fn vertex_ratio(&self) -> f64 {
        self.model_vertices as f64 / self.original_vertices.max(1) as f64
    }
}

/// A pre-characterized statistical timing model of a module —
/// combinational, or registered when a [`SequentialModel`] interface is
/// attached.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingModel {
    name: String,
    graph: TimingGraph<CanonicalForm>,
    geometry: GridGeometry,
    layout: VariableLayout,
    pca: Vec<PcaBasis>,
    config: SstaConfig,
    stats: ExtractionStats,
    /// Sequential interface (setup/hold/launch constraint arcs); `None`
    /// for purely combinational models. `serde(default)` keeps pre-
    /// sequential JSON artifacts loadable.
    #[serde(default)]
    sequential: Option<SequentialModel>,
}

impl TimingModel {
    pub(crate) fn new(
        ctx: &ModuleContext,
        graph: TimingGraph<CanonicalForm>,
        stats: ExtractionStats,
    ) -> Self {
        TimingModel {
            name: ctx.netlist().name().to_owned(),
            graph,
            geometry: ctx.geometry(),
            layout: ctx.layout().clone(),
            pca: ctx.pca().iter().map(|p| (**p).clone()).collect(),
            config: ctx.config().clone(),
            stats,
            sequential: None,
        }
    }

    /// Attaches a sequential interface (registered-module extraction).
    pub(crate) fn with_sequential(mut self, sequential: SequentialModel) -> Self {
        self.sequential = Some(sequential);
        self
    }

    /// Reassembles a model from its constituent parts (binary codec
    /// support). No cross-validation happens here: the codec layer is
    /// responsible for structural checks, and the store's integrity
    /// stamp has already vouched for the bytes.
    #[allow(clippy::too_many_arguments)] // one argument per serialized section
    pub(crate) fn from_codec_parts(
        name: String,
        graph: TimingGraph<CanonicalForm>,
        geometry: GridGeometry,
        layout: VariableLayout,
        pca: Vec<PcaBasis>,
        config: SstaConfig,
        stats: ExtractionStats,
        sequential: Option<SequentialModel>,
    ) -> Self {
        TimingModel {
            name,
            graph,
            geometry,
            layout,
            pca,
            config,
            stats,
            sequential,
        }
    }

    /// Assembles a model from externally produced parts — the seam the
    /// SDF interchange layer uses to turn imported cells into analyzable
    /// models. Unlike the codec path, the parts here come from arbitrary
    /// outside data, so the sequential interface is validated against
    /// the graph's port counts and variable space before the model is
    /// admitted.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Incompatible`] naming the first constraint
    /// arc that references an unknown pin or lives in the wrong variable
    /// space.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        name: String,
        graph: TimingGraph<CanonicalForm>,
        geometry: GridGeometry,
        layout: VariableLayout,
        pca: Vec<PcaBasis>,
        config: SstaConfig,
        stats: ExtractionStats,
        sequential: Option<SequentialModel>,
    ) -> Result<Self, CoreError> {
        if let Some(seq) = &sequential {
            seq.validate(
                graph.inputs().len(),
                graph.outputs().len(),
                config.parameters.len(),
                layout.n_locals(),
            )
            .map_err(|reason| CoreError::Incompatible { reason })?;
        }
        Ok(TimingModel {
            name,
            graph,
            geometry,
            layout,
            pca,
            config,
            stats,
            sequential,
        })
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compressed timing graph.
    pub fn graph(&self) -> &TimingGraph<CanonicalForm> {
        &self.graph
    }

    /// Number of input ports.
    pub fn n_inputs(&self) -> usize {
        self.graph.inputs().len()
    }

    /// Number of output ports.
    pub fn n_outputs(&self) -> usize {
        self.graph.outputs().len()
    }

    /// Edges in the model (`Em`).
    pub fn edge_count(&self) -> usize {
        self.graph.n_edges()
    }

    /// Vertices in the model (`Vm`).
    pub fn vertex_count(&self) -> usize {
        self.graph.n_vertices()
    }

    /// Extraction accounting.
    pub fn stats(&self) -> &ExtractionStats {
        &self.stats
    }

    /// The sequential interface, if this is a registered module's model.
    pub fn sequential(&self) -> Option<&SequentialModel> {
        self.sequential.as_ref()
    }

    /// `true` when the model carries a sequential interface.
    pub fn is_sequential(&self) -> bool {
        self.sequential.is_some()
    }

    /// The module's grid partition (module-local coordinates).
    pub fn geometry(&self) -> GridGeometry {
        self.geometry
    }

    /// The module's independent-variable layout.
    pub fn layout(&self) -> &VariableLayout {
        &self.layout
    }

    /// Per-parameter PCA bases from characterization.
    pub fn pca(&self) -> &[PcaBasis] {
        &self.pca
    }

    /// The configuration the model was characterized under.
    pub fn config(&self) -> &SstaConfig {
        &self.config
    }

    /// A zero-delay constant in the model's variable space.
    pub fn zero(&self) -> CanonicalForm {
        CanonicalForm::constant(0.0, self.config.parameters.len(), self.layout.n_locals())
    }

    /// The model's statistical input/output delay matrix.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (cannot occur for extracted models).
    pub fn delay_matrix(&self) -> Result<DelayMatrix<CanonicalForm>, CoreError> {
        Ok(allpairs::delay_matrix(&self.graph, || self.zero())?)
    }

    /// Checks that this model was characterized compatibly with `config`
    /// (same parameters, correlation model and grid pitch) so it can be
    /// embedded in a design analyzed under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Incompatible`] describing the first mismatch.
    pub fn check_compatible(&self, config: &SstaConfig) -> Result<(), CoreError> {
        if self.config.parameters != config.parameters {
            return Err(CoreError::Incompatible {
                reason: format!("model `{}` uses different process parameters", self.name),
            });
        }
        if self.config.correlation != config.correlation {
            return Err(CoreError::Incompatible {
                reason: format!("model `{}` uses a different correlation model", self.name),
            });
        }
        if (self.config.grid_pitch_um() - config.grid_pitch_um()).abs() > 1e-9 {
            return Err(CoreError::Incompatible {
                reason: format!("model `{}` uses a different grid pitch", self.name),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use crate::params::SstaConfig;
    use ssta_netlist::generators;

    fn model() -> TimingModel {
        let n = generators::ripple_carry_adder(6).unwrap();
        let ctx = ModuleContext::characterize(n, &SstaConfig::paper()).unwrap();
        extract(&ctx, &ExtractOptions::default()).unwrap()
    }

    #[test]
    fn ratios_are_consistent_with_counts() {
        let m = model();
        let s = m.stats();
        assert_eq!(s.model_edges, m.edge_count());
        assert_eq!(s.model_vertices, m.vertex_count());
        assert!((s.edge_ratio() - s.model_edges as f64 / s.original_edges as f64).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_preserves_model() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let back: TimingModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name(), m.name());
        assert_eq!(back.edge_count(), m.edge_count());
        assert_eq!(back.n_inputs(), m.n_inputs());
        // The delay matrices agree entry by entry.
        let a = m.delay_matrix().unwrap();
        let b = back.delay_matrix().unwrap();
        let (worst, mismatched) = a.compare_with(&b, |d| d.mean());
        assert_eq!(mismatched, 0);
        assert!(worst < 1e-12);
    }

    #[test]
    fn compatibility_check_accepts_own_config() {
        let m = model();
        m.check_compatible(&SstaConfig::paper()).unwrap();
    }

    #[test]
    fn compatibility_check_rejects_other_correlation() {
        let m = model();
        let mut other = SstaConfig::paper();
        other.correlation.cutoff_grids = 5.0;
        assert!(matches!(
            m.check_compatible(&other),
            Err(CoreError::Incompatible { .. })
        ));
    }

    #[test]
    fn compatibility_check_rejects_other_pitch() {
        let m = model();
        let mut other = SstaConfig::paper();
        other.grid_side_cells = 5;
        assert!(m.check_compatible(&other).is_err());
    }
}
