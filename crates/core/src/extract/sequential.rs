//! Sequential model extraction: registered modules become timing models
//! carrying statistical constraint arcs.
//!
//! A [`RegisteredModule`](ssta_netlist::RegisteredModule) hands off an
//! input-registered block: every module input is the D pin of a register,
//! every output launches from the shared clock through clock-to-q plus
//! the combinational core. Following "Timing Model Extraction for
//! Sequential Circuits Considering Process Variations" (arXiv
//! 1705.04976), the interface a vendor ships is not the internal netlist
//! but three families of *statistical* constraint arcs, each a canonical
//! first-order form built with the same PCA machinery as combinational
//! arc delays:
//!
//! * **setup / hold** per input port — how long D must be stable around
//!   the capturing clock edge at that register's die location;
//! * **launch (clock-to-output)** per output port — the statistical max
//!   over all registers `i` of `clk→q_i ⊕ D(i, j)`, where `D` is the
//!   extracted core's input/output delay matrix. Lumping the launch this
//!   way is exact for a single-clock bank (all registers launch on the
//!   same edge) and makes interface-only models — including ones
//!   re-imported from SDF — analyzable without their internal graphs.
//!
//! The result is an ordinary [`TimingModel`] with
//! [`SequentialModel`] attached: the codec, the store and the
//! hierarchical assembly all carry it along.

use crate::canonical::CanonicalForm;
use crate::extract::{extract, ExtractOptions, TimingModel};
use crate::module::ModuleContext;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use ssta_netlist::{SeqCellType, Signal};

/// One statistical constraint arc: a canonical-form quantity attached to
/// a model port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintArc {
    /// Port index — an input port for setup/hold arcs, an output port
    /// for launch arcs.
    pub port: u32,
    /// The statistical quantity (ps), in the model's variable space.
    pub form: CanonicalForm,
}

/// The sequential interface of a registered timing model: per-input
/// setup/hold constraints and per-output clock-to-output launch delays,
/// all relative to one clock pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialModel {
    /// Name of the clock pin every arc is referenced to.
    pub clock_pin: String,
    /// Clock-to-output launch delay per output port (ascending port
    /// order, one arc per reachable output).
    pub launch: Vec<ConstraintArc>,
    /// Setup requirement per input port (ascending port order).
    pub setup: Vec<ConstraintArc>,
    /// Hold requirement per input port (ascending port order).
    pub hold: Vec<ConstraintArc>,
}

impl SequentialModel {
    /// Checks every constraint arc against the owning model's shape:
    /// launch ports must name existing outputs, setup/hold ports existing
    /// inputs, and every form must live in the model's variable space.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a human-readable reason (callers
    /// wrap it in the [`CoreError`] variant appropriate to their layer —
    /// the codec's decode paths report it as a named
    /// [`CoreError::Codec`] instead of panicking or silently dropping
    /// the arc).
    pub fn validate(
        &self,
        n_inputs: usize,
        n_outputs: usize,
        n_globals: usize,
        n_locals: usize,
    ) -> Result<(), String> {
        let check = |arcs: &[ConstraintArc], family: &str, bound: usize| -> Result<(), String> {
            for arc in arcs {
                if arc.port as usize >= bound {
                    return Err(format!(
                        "{family} constraint arc references unknown pin {} \
                         (model has {bound} {family}-side ports)",
                        arc.port
                    ));
                }
                if arc.form.n_globals() != n_globals || arc.form.n_locals() != n_locals {
                    return Err(format!(
                        "{family} constraint arc on pin {} has variable shape \
                         {}g/{}l, model uses {n_globals}g/{n_locals}l",
                        arc.port,
                        arc.form.n_globals(),
                        arc.form.n_locals()
                    ));
                }
            }
            Ok(())
        };
        check(&self.launch, "launch", n_outputs)?;
        check(&self.setup, "setup", n_inputs)?;
        check(&self.hold, "hold", n_inputs)?;
        Ok(())
    }

    /// The setup arc of input port `port`, if present.
    pub fn setup_of(&self, port: usize) -> Option<&CanonicalForm> {
        arc_of(&self.setup, port)
    }

    /// The hold arc of input port `port`, if present.
    pub fn hold_of(&self, port: usize) -> Option<&CanonicalForm> {
        arc_of(&self.hold, port)
    }

    /// The launch arc of output port `port`, if present.
    pub fn launch_of(&self, port: usize) -> Option<&CanonicalForm> {
        arc_of(&self.launch, port)
    }
}

fn arc_of(arcs: &[ConstraintArc], port: usize) -> Option<&CanonicalForm> {
    arcs.iter()
        .find(|a| a.port as usize == port)
        .map(|a| &a.form)
}

/// Extracts a registered module: the combinational core is compressed by
/// the ordinary extraction pipeline, then the register bank is
/// characterized into statistical setup/hold and lumped clock-to-output
/// launch arcs at each register's die location.
///
/// `ctx` characterizes the module's *core*; `register` is the cell
/// banked across its inputs. Each register is placed at the grid of the
/// first gate consuming its D input, so its constraint arcs pick up the
/// same spatially-correlated variation as the logic it feeds.
///
/// # Errors
///
/// Propagates extraction failures, and returns [`CoreError::Timing`]
/// (`NoPath`) if some output is unreachable from every input (cannot
/// happen with connectivity repair enabled, the default).
pub fn extract_registered(
    ctx: &ModuleContext,
    register: &SeqCellType,
    options: &ExtractOptions,
) -> Result<TimingModel, CoreError> {
    let model = extract(ctx, options)?;

    // One grid per input register: the first consumer gate's location.
    let grids = input_grids(ctx);
    let clk2q: Vec<CanonicalForm> = grids
        .iter()
        .map(|&g| clocked_form(ctx, register, register.clk_to_q_ps(), g))
        .collect();
    let setup = grids
        .iter()
        .enumerate()
        .map(|(i, &g)| ConstraintArc {
            port: i as u32,
            form: clocked_form(ctx, register, register.setup_ps(), g),
        })
        .collect();
    let hold = grids
        .iter()
        .enumerate()
        .map(|(i, &g)| ConstraintArc {
            port: i as u32,
            form: clocked_form(ctx, register, register.hold_ps(), g),
        })
        .collect();

    // Lumped launch per output: max over registers of clk→q ⊕ core
    // delay, in ascending input order (deterministic reduction).
    let dm = model.delay_matrix()?;
    let mut launch = Vec::with_capacity(dm.n_outputs());
    for j in 0..dm.n_outputs() {
        let mut acc: Option<CanonicalForm> = None;
        for (i, c2q) in clk2q.iter().enumerate() {
            if let Some(d) = dm.get(i, j) {
                let cand = c2q.sum(d);
                acc = Some(match acc {
                    Some(prev) => prev.maximum(&cand),
                    None => cand,
                });
            }
        }
        let form = acc.ok_or(CoreError::Timing(ssta_timing::TimingError::NoPath))?;
        launch.push(ConstraintArc {
            port: j as u32,
            form,
        });
    }

    Ok(model.with_sequential(SequentialModel {
        clock_pin: register.clock_pin().to_owned(),
        launch,
        setup,
        hold,
    }))
}

/// Grid index of each input register: the grid of the first gate
/// consuming that primary input (validated netlists use every input).
fn input_grids(ctx: &ModuleContext) -> Vec<usize> {
    let netlist = ctx.netlist();
    let geometry = ctx.geometry();
    let placement = ctx.placement();
    let mut first_consumer: Vec<Option<usize>> = vec![None; netlist.n_inputs()];
    for (gi, gate) in netlist.gates().iter().enumerate() {
        for &s in &gate.inputs {
            if let Signal::Input(i) = s {
                let slot = &mut first_consumer[i as usize];
                if slot.is_none() {
                    *slot = Some(gi);
                }
            }
        }
    }
    first_consumer
        .into_iter()
        .map(|g| {
            // Unconsumed inputs cannot occur in validated netlists; fall
            // back to the die origin's grid rather than panicking.
            let gate = g.unwrap_or(0);
            geometry.grid_of(placement.gate_position(gate))
        })
        .collect()
}

/// Builds the canonical form of one clocked quantity at a grid location,
/// splitting its 1σ response into global, PCA-projected local and
/// private random shares — the same decomposition combinational arcs get
/// in module characterization.
fn clocked_form(
    ctx: &ModuleContext,
    register: &SeqCellType,
    nominal_ps: f64,
    grid: usize,
) -> CanonicalForm {
    let config = ctx.config();
    let layout = ctx.layout();
    let shares = &config.correlation;
    let sg = shares.global_share.sqrt();
    let sl = shares.local_share.sqrt();
    let sr = shares.random_share.sqrt();

    let mut globals = vec![0.0; config.parameters.len()];
    let mut locals = vec![0.0; layout.n_locals()];
    let mut random_var = 0.0;
    for (p, spec) in config.parameters.iter().enumerate() {
        let base = nominal_ps * register.sensitivity().get(spec.param) * spec.sigma_rel;
        globals[p] = base * sg;
        let row = ctx.pca()[p].transform().row(grid);
        let block = layout.local_range(p);
        for (slot, &t) in locals[block].iter_mut().zip(row) {
            *slot = base * sl * t;
        }
        random_var += (base * sr) * (base * sr);
    }
    CanonicalForm::from_parts(nominal_ps, globals, locals, random_var.sqrt())
        .expect("finite construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SstaConfig;
    use ssta_netlist::{generators, seq_library_90nm};

    fn registered_model() -> (ModuleContext, TimingModel) {
        let stages = generators::registered_pipeline(&["rca4"], "DFF").unwrap();
        let ctx =
            ModuleContext::characterize(stages[0].core().clone(), &SstaConfig::paper()).unwrap();
        let model =
            extract_registered(&ctx, stages[0].register(), &ExtractOptions::default()).unwrap();
        (ctx, model)
    }

    #[test]
    fn registered_extraction_attaches_full_interface() {
        let (ctx, model) = registered_model();
        let seq = model.sequential().expect("sequential interface");
        assert_eq!(seq.clock_pin, "clk");
        assert_eq!(seq.setup.len(), ctx.netlist().n_inputs());
        assert_eq!(seq.hold.len(), ctx.netlist().n_inputs());
        assert_eq!(seq.launch.len(), model.n_outputs());
        seq.validate(
            model.n_inputs(),
            model.n_outputs(),
            model.config().parameters.len(),
            model.layout().n_locals(),
        )
        .unwrap();
    }

    #[test]
    fn constraint_arcs_carry_statistical_structure() {
        let (_, model) = registered_model();
        let seq = model.sequential().unwrap();
        let dff = seq_library_90nm();
        let reg = dff.find("DFF").unwrap();
        for arc in seq.setup.iter().chain(&seq.hold).chain(&seq.launch) {
            assert!(arc.form.mean() > 0.0);
            assert!(arc.form.std_dev() > 0.0, "arcs vary with process");
            assert!(arc.form.globals().iter().all(|&g| g > 0.0));
            assert!(arc.form.locals().iter().any(|&l| l.abs() > 0.0));
        }
        // Setup/hold means are the library's nominal values.
        assert!((seq.setup[0].form.mean() - reg.setup_ps()).abs() < 1e-12);
        assert!((seq.hold[0].form.mean() - reg.hold_ps()).abs() < 1e-12);
    }

    #[test]
    fn launch_dominates_clk_to_q_plus_core_delay() {
        let (_, model) = registered_model();
        let seq = model.sequential().unwrap();
        let dff = seq_library_90nm();
        let c2q = dff.find("DFF").unwrap().clk_to_q_ps();
        let dm = model.delay_matrix().unwrap();
        for arc in &seq.launch {
            let j = arc.port as usize;
            for i in 0..dm.n_inputs() {
                if let Some(d) = dm.get(i, j) {
                    // A statistical max is bounded below by each operand's
                    // mean.
                    assert!(
                        arc.form.mean() >= c2q + d.mean() - 1e-9,
                        "launch {} < clk2q {} + core {}",
                        arc.form.mean(),
                        c2q,
                        d.mean()
                    );
                }
            }
        }
    }

    #[test]
    fn validate_names_the_offending_pin() {
        let (_, model) = registered_model();
        let mut seq = model.sequential().unwrap().clone();
        seq.setup[0].port = 10_000;
        let reason = seq
            .validate(
                model.n_inputs(),
                model.n_outputs(),
                model.config().parameters.len(),
                model.layout().n_locals(),
            )
            .unwrap_err();
        assert!(reason.contains("unknown pin 10000"), "{reason}");
    }

    #[test]
    fn sequential_extraction_is_deterministic() {
        let (_, a) = registered_model();
        let (_, b) = registered_model();
        assert_eq!(a.sequential(), b.sequential());
    }
}
