//! Grid-based spatial correlation (Chang/Sapatnekar model, Section II).
//!
//! The die is partitioned into square grids; all cells in one grid share
//! one local random variable per process parameter. Correlation between
//! grid variables depends only on grid distance and is pre-characterized;
//! PCA (in `ssta-math`) decomposes the correlated grid variables into
//! independent components.

use crate::CoreError;
use serde::{Deserialize, Serialize};
use ssta_math::Matrix;
use ssta_netlist::DieRect;

/// A uniform grid partition of a rectangular die region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridGeometry {
    origin: (f64, f64),
    pitch: f64,
    nx: usize,
    ny: usize,
}

impl GridGeometry {
    /// Partitions a die (anchored at `origin = (0, 0)`) with square grids
    /// of the given pitch.
    ///
    /// # Panics
    ///
    /// Panics if the pitch or die dimensions are not positive.
    pub fn from_die(die: DieRect, pitch_um: f64) -> Self {
        assert!(pitch_um > 0.0, "grid pitch must be positive");
        assert!(die.width > 0.0 && die.height > 0.0, "die must be non-empty");
        GridGeometry {
            origin: (0.0, 0.0),
            pitch: pitch_um,
            nx: (die.width / pitch_um).ceil().max(1.0) as usize,
            ny: (die.height / pitch_um).ceil().max(1.0) as usize,
        }
    }

    /// Reassembles a geometry from its stored fields (binary codec
    /// support; the public constructor [`from_die`](Self::from_die)
    /// re-derives `nx`/`ny` and cannot reproduce a translated geometry).
    pub(crate) fn from_raw_parts(origin: (f64, f64), pitch: f64, nx: usize, ny: usize) -> Self {
        GridGeometry {
            origin,
            pitch,
            nx,
            ny,
        }
    }

    /// Number of grids.
    pub fn n_grids(&self) -> usize {
        self.nx * self.ny
    }

    /// Grid columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Grid pitch in µm.
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// The grid containing a point (points outside clamp to the border
    /// grid — pads sit on the die edge).
    pub fn grid_of(&self, (x, y): (f64, f64)) -> usize {
        let gx = (((x - self.origin.0) / self.pitch).floor() as isize)
            .clamp(0, self.nx as isize - 1) as usize;
        let gy = (((y - self.origin.1) / self.pitch).floor() as isize)
            .clamp(0, self.ny as isize - 1) as usize;
        gy * self.nx + gx
    }

    /// Center coordinates of grid `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn center(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.n_grids(), "grid index out of range");
        let gx = idx % self.nx;
        let gy = idx / self.nx;
        (
            self.origin.0 + (gx as f64 + 0.5) * self.pitch,
            self.origin.1 + (gy as f64 + 0.5) * self.pitch,
        )
    }

    /// All grid centers, in index order.
    pub fn centers(&self) -> Vec<(f64, f64)> {
        (0..self.n_grids()).map(|i| self.center(i)).collect()
    }

    /// The same geometry shifted by `(dx, dy)` — the module's grids as
    /// seen from the top-level design.
    pub fn translated(&self, dx: f64, dy: f64) -> GridGeometry {
        GridGeometry {
            origin: (self.origin.0 + dx, self.origin.1 + dy),
            ..*self
        }
    }

    /// The origin of the geometry.
    pub fn origin(&self) -> (f64, f64) {
        self.origin
    }

    /// The full extent `(width, height)` covered by the grids in µm.
    /// May exceed the underlying die because partial grids round up.
    pub fn extent_um(&self) -> (f64, f64) {
        (self.nx as f64 * self.pitch, self.ny as f64 * self.pitch)
    }
}

/// How the variance of each process parameter splits and how the local
/// share correlates across grids.
///
/// Total correlation between the parameter values of two cells at grid
/// distance `d` is `global + local·ρ(d)` with
/// `ρ(d) = exp(−decay·d)` for `d ≤ cutoff` and `0` beyond — beyond the
/// cutoff only the global share correlates, exactly the paper's
/// "correlation from global variation only" regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationModel {
    /// Variance share of the global (chip-wide) variation.
    pub global_share: f64,
    /// Variance share of the spatially correlated local variation.
    pub local_share: f64,
    /// Variance share of the per-delay independent random variation.
    pub random_share: f64,
    /// Exponential decay rate of the local correlation per grid distance.
    pub decay_per_grid: f64,
    /// Grid distance beyond which local correlation is zero.
    pub cutoff_grids: f64,
}

impl CorrelationModel {
    /// The paper's Section VI settings: global floor 0.42, neighbouring
    /// grids correlate at 0.92, local correlation vanishes beyond grid
    /// distance 15. With shares `(0.42, 0.53, 0.05)` the decay rate is
    /// solved from `0.42 + 0.53·exp(−decay) = 0.92`.
    pub fn paper() -> Self {
        let global_share: f64 = 0.42;
        let local_share: f64 = 0.53;
        let random_share = 0.05;
        let neighbour_target: f64 = 0.92;
        let decay_per_grid = -((neighbour_target - global_share) / local_share).ln();
        CorrelationModel {
            global_share,
            local_share,
            random_share,
            decay_per_grid,
            cutoff_grids: 15.0,
        }
    }

    /// Validates the shares and decay.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if shares are negative, do not sum to
    /// 1, or the decay/cutoff are not positive.
    pub fn validate(&self) -> Result<(), CoreError> {
        let sum = self.global_share + self.local_share + self.random_share;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CoreError::Config {
                reason: format!("variance shares sum to {sum}, expected 1"),
            });
        }
        if self.global_share < 0.0 || self.local_share < 0.0 || self.random_share < 0.0 {
            return Err(CoreError::Config {
                reason: "variance shares must be non-negative".into(),
            });
        }
        if self.decay_per_grid < 0.0 || self.cutoff_grids <= 0.0 {
            return Err(CoreError::Config {
                reason: "decay must be non-negative and cutoff positive".into(),
            });
        }
        Ok(())
    }

    /// Local correlation `ρ(d)` at a grid distance `d` (in grid pitches).
    pub fn local_correlation(&self, dist_grids: f64) -> f64 {
        if dist_grids > self.cutoff_grids {
            0.0
        } else {
            (-self.decay_per_grid * dist_grids).exp()
        }
    }

    /// Total parameter correlation between two cells at grid distance `d`
    /// (same cell/grid: `global + local`; the random share never
    /// correlates).
    pub fn total_correlation(&self, dist_grids: f64) -> f64 {
        self.global_share + self.local_share * self.local_correlation(dist_grids)
    }

    /// Correlation matrix of the unit-variance local grid variables for
    /// the given grid centers; distances are measured in units of
    /// `pitch_um`.
    ///
    /// The matrix is symmetric by construction, so only the upper
    /// triangle is evaluated (one `exp` per unordered pair) and the lower
    /// triangle is mirrored.
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or the pitch is not positive.
    pub fn covariance_matrix(&self, centers: &[(f64, f64)], pitch_um: f64) -> Matrix {
        self.covariance_matrix_threaded(centers, pitch_um, 1)
    }

    /// [`covariance_matrix`](Self::covariance_matrix) with the
    /// upper-triangle rows computed across up to `threads` scoped worker
    /// threads (`0` = available parallelism, `1` = serial). Every entry
    /// is computed independently, so the result is bit-identical for any
    /// thread count; design-level matrices grow quadratically with
    /// instance count, which makes this the assembly's first parallel
    /// phase.
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or the pitch is not positive.
    pub fn covariance_matrix_threaded(
        &self,
        centers: &[(f64, f64)],
        pitch_um: f64,
        threads: usize,
    ) -> Matrix {
        assert!(!centers.is_empty(), "need at least one grid");
        assert!(pitch_um > 0.0, "pitch must be positive");
        let n = centers.len();
        let workers = crate::parallel::effective_threads(threads);
        // Upper-triangle rows (entry j ≥ i), shortest rows last so the
        // atomic-cursor scheduler balances the triangular workload.
        let rows: Vec<Vec<f64>> = crate::parallel::parallel_indexed(n, workers, |i| {
            let (xi, yi) = centers[i];
            let mut row = Vec::with_capacity(n - i);
            row.push(1.0);
            for &(xj, yj) in &centers[i + 1..] {
                let dx = xi - xj;
                let dy = yi - yj;
                let d = (dx * dx + dy * dy).sqrt() / pitch_um;
                row.push(self.local_correlation(d));
            }
            row
        });
        let mut m = Matrix::zeros(n, n);
        for (i, row) in rows.iter().enumerate() {
            m.row_mut(i)[i..].copy_from_slice(row);
        }
        // Mirror the lower triangle, writing row-major.
        for j in 1..n {
            for i in 0..j {
                m[(j, i)] = m[(i, j)];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_math::{PcaBasis, PcaOptions};

    fn die(w: f64, h: f64) -> DieRect {
        DieRect {
            width: w,
            height: h,
        }
    }

    #[test]
    fn geometry_partitions_die() {
        let g = GridGeometry::from_die(die(100.0, 60.0), 20.0);
        assert_eq!(g.nx(), 5);
        assert_eq!(g.ny(), 3);
        assert_eq!(g.n_grids(), 15);
    }

    #[test]
    fn grid_of_maps_points_correctly() {
        let g = GridGeometry::from_die(die(40.0, 40.0), 20.0);
        assert_eq!(g.grid_of((1.0, 1.0)), 0);
        assert_eq!(g.grid_of((39.0, 1.0)), 1);
        assert_eq!(g.grid_of((1.0, 39.0)), 2);
        assert_eq!(g.grid_of((39.0, 39.0)), 3);
        // Out-of-range points clamp to border grids.
        assert_eq!(g.grid_of((-5.0, -5.0)), 0);
        assert_eq!(g.grid_of((100.0, 100.0)), 3);
    }

    #[test]
    fn centers_are_inside_their_grids() {
        let g = GridGeometry::from_die(die(60.0, 60.0), 20.0);
        for i in 0..g.n_grids() {
            assert_eq!(g.grid_of(g.center(i)), i);
        }
    }

    #[test]
    fn translation_moves_centers() {
        let g = GridGeometry::from_die(die(40.0, 40.0), 20.0);
        let t = g.translated(100.0, 0.0);
        let (x0, _) = g.center(0);
        let (x1, _) = t.center(0);
        assert!((x1 - x0 - 100.0).abs() < 1e-12);
    }

    #[test]
    fn paper_model_hits_published_correlation_points() {
        let m = CorrelationModel::paper();
        m.validate().unwrap();
        // Neighbouring grids: 0.92.
        assert!((m.total_correlation(1.0) - 0.92).abs() < 1e-12);
        // Beyond the cutoff: global only, 0.42.
        assert!((m.total_correlation(15.1) - 0.42).abs() < 1e-12);
        assert!((m.total_correlation(100.0) - 0.42).abs() < 1e-12);
        // Same grid: everything except the random share.
        assert!((m.total_correlation(0.0) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn correlation_is_monotonically_decreasing() {
        let m = CorrelationModel::paper();
        let mut prev = m.total_correlation(0.0);
        for d in 1..20 {
            let c = m.total_correlation(d as f64);
            assert!(c <= prev + 1e-15, "not monotone at d = {d}");
            prev = c;
        }
    }

    #[test]
    fn covariance_matrix_is_symmetric_with_unit_diagonal() {
        let g = GridGeometry::from_die(die(80.0, 80.0), 20.0);
        let m = CorrelationModel::paper();
        let c = m.covariance_matrix(&g.centers(), g.pitch());
        assert_eq!(c.max_asymmetry(), 0.0);
        for i in 0..c.rows() {
            assert_eq!(c[(i, i)], 1.0);
        }
    }

    #[test]
    fn covariance_matrix_decomposes_with_pca() {
        let g = GridGeometry::from_die(die(120.0, 120.0), 20.0);
        let m = CorrelationModel::paper();
        let c = m.covariance_matrix(&g.centers(), g.pitch());
        let pca = PcaBasis::from_covariance(&c, PcaOptions::default()).unwrap();
        // Reconstruction error small (eigenvalue flooring may drop a hair).
        let back = pca
            .transform()
            .matmul(&pca.transform().transposed())
            .unwrap();
        assert!(back.max_abs_diff(&c).unwrap() < 1e-6);
    }

    #[test]
    fn threaded_covariance_is_bit_identical_to_serial() {
        let g = GridGeometry::from_die(die(260.0, 180.0), 20.0);
        let m = CorrelationModel::paper();
        let serial = m.covariance_matrix(&g.centers(), g.pitch());
        for threads in [0, 2, 7] {
            let par = m.covariance_matrix_threaded(&g.centers(), g.pitch(), threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn validation_rejects_bad_shares() {
        let mut m = CorrelationModel::paper();
        m.global_share = 0.9; // shares no longer sum to 1
        assert!(m.validate().is_err());
    }
}
