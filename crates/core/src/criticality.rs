//! Edge criticality (Section IV-B of the paper).
//!
//! The criticality `c_ij` of edge `e` with respect to input `i` and output
//! `j` is the probability that `e` lies on the statistically longest
//! `i → j` path. Following Xiong et al. (DATE'08) it is computed as
//!
//! `c_ij = P{dₑ ≥ M_ij}`,   `dₑ = aₑ + d + rₑ`
//!
//! where `aₑ` is the arrival at `e`'s source from input `i` alone, `rₑ` is
//! the maximum delay from `e`'s sink to output `j`, and `M_ij` is the full
//! input-to-output delay. The *maximum criticality* `c_m` of an edge is the
//! max of `c_ij` over all input/output pairs; edges with `c_m` below a
//! threshold δ are dropped during model extraction.
//!
//! The all-pairs sweep (one forward traversal per input, one backward per
//! output, Sapatnekar ISCAS'96) is batched over outputs to bound memory,
//! parallelized over inputs with crossbeam scoped threads, and guarded by a
//! cheap mean/σ prefilter: when `M_ij`'s mean exceeds `dₑ`'s by many
//! combined sigmas, `c_ij` is vanishingly small and the exact tightness
//! probability (which needs a full covariance dot product) is skipped.
//!
//! Every traversal of the sweep runs through one shared
//! [`LevelSchedule`]: the graph is levelized once per call, not once per
//! input/output, and each pass is the pull-ordered wavefront engine of
//! [`ssta_timing::levels`].

use crate::canonical::CanonicalForm;
use crate::CoreError;
use ssta_math::gaussian::tightness_probability;
use ssta_math::parallel::try_parallel_indexed;
use ssta_math::Histogram;
use ssta_timing::{levels, LevelSchedule, TimingGraph, VertexId};

/// Options for the criticality engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalityOptions {
    /// Outputs processed per batch (bounds the memory used for backward
    /// propagation results).
    pub output_batch: usize,
    /// Worker threads; `0` uses the available parallelism.
    pub threads: usize,
    /// Prefilter width in combined sigmas: pairs whose mean gap exceeds
    /// this many (sub-additive bound) sigmas are treated as criticality 0.
    pub prefilter_sigmas: f64,
}

impl Default for CriticalityOptions {
    fn default() -> Self {
        CriticalityOptions {
            output_batch: 16,
            threads: 0,
            prefilter_sigmas: 8.0,
        }
    }
}

/// Maximum criticality `c_m` per edge slot (indexed by `EdgeId.0`; dead
/// edges hold 0).
///
/// `zero` must be the additive identity of the graph's variable space.
///
/// # Errors
///
/// Propagates graph errors ([`CoreError::Timing`]).
pub fn edge_criticalities(
    graph: &TimingGraph<CanonicalForm>,
    zero: &CanonicalForm,
    options: &CriticalityOptions,
) -> Result<Vec<f64>, CoreError> {
    let inputs: Vec<VertexId> = graph.inputs().to_vec();
    // Distinct output vertices (ports may share a driver).
    let mut outputs: Vec<VertexId> = graph.outputs().to_vec();
    outputs.sort();
    outputs.dedup();

    // One levelization serves every forward and backward pass below.
    let schedule = LevelSchedule::build(graph)?;

    let n_threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        options.threads
    };
    let batch = options.output_batch.max(1);

    // Edge snapshot: (edge slot, from, to, nominal, sigma).
    let edge_info: Vec<(usize, u32, u32, f64, f64)> = graph
        .edges_iter()
        .map(|(id, e)| {
            (
                id.0 as usize,
                e.from.0,
                e.to.0,
                e.delay.mean(),
                e.delay.std_dev(),
            )
        })
        .collect();

    let n_slots = graph
        .edges_iter()
        .map(|(id, _)| id.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut cm = vec![0.0f64; n_slots];

    for chunk in outputs.chunks(batch) {
        // Backward propagation per output in this batch: independent
        // sink passes fanned out via parallel_indexed (index-ordered,
        // bit-identical for any thread count).
        let required = try_parallel_indexed(chunk.len(), n_threads, |j| {
            levels::backward(graph, &schedule, &[(chunk[j], zero.clone())], 1)
        })?;
        // Cache (nominal, sigma) of each required entry.
        let req_stats: Vec<Vec<Option<(f64, f64)>>> = required
            .iter()
            .map(|r| {
                r.iter()
                    .map(|o| o.as_ref().map(|f| (f.mean(), f.std_dev())))
                    .collect()
            })
            .collect();

        // Parallel over inputs; each worker accumulates a local cm array.
        let input_refs: Vec<VertexId> = inputs.clone();
        let locals = parallel_map_chunks(&input_refs, n_threads, |chunk_inputs| {
            let mut local_cm = vec![0.0f64; n_slots];
            for &vi in chunk_inputs {
                let arrival = levels::forward(graph, &schedule, &[(vi, zero.clone())], 1)
                    .expect("schedule built from this graph");
                let arr_stats: Vec<Option<(f64, f64)>> = arrival
                    .iter()
                    .map(|o| o.as_ref().map(|f| (f.mean(), f.std_dev())))
                    .collect();
                for (j_idx, &vj) in chunk.iter().enumerate() {
                    let Some(m_ij) = arrival[vj.0 as usize].as_ref() else {
                        continue;
                    };
                    let (m_nom, m_sig) = arr_stats[vj.0 as usize].expect("checked above");
                    let req_j = &required[j_idx];
                    let req_stat_j = &req_stats[j_idx];
                    for &(slot, from, to, d_nom, d_sig) in &edge_info {
                        if local_cm[slot] >= 1.0 {
                            continue;
                        }
                        let Some((a_nom, a_sig)) = arr_stats[from as usize] else {
                            continue;
                        };
                        let Some((r_nom, r_sig)) = req_stat_j[to as usize] else {
                            continue;
                        };
                        // Cheap prefilter: σ(x + y) ≤ σ(x) + σ(y) for any
                        // correlation, so θ ≤ combined. When the mean gap
                        // dwarfs it, P{de ≥ M} ≈ 0.
                        let de_nom = a_nom + d_nom + r_nom;
                        let combined = a_sig + d_sig + r_sig + m_sig;
                        if m_nom - de_nom > options.prefilter_sigmas * combined {
                            continue;
                        }
                        let a = arrival[from as usize].as_ref().expect("stats cached");
                        let r = req_j[to as usize].as_ref().expect("stats cached");
                        let de = a.sum(&graph_edge_delay(graph, slot)).sum(r);
                        let c = criticality_probability(&de, m_ij);
                        if c > local_cm[slot] {
                            local_cm[slot] = c;
                        }
                    }
                }
            }
            Ok::<Vec<f64>, CoreError>(local_cm)
        })?;
        for local in locals {
            for (g, l) in cm.iter_mut().zip(&local) {
                if *l > *g {
                    *g = *l;
                }
            }
        }
    }
    Ok(cm)
}

fn graph_edge_delay(graph: &TimingGraph<CanonicalForm>, slot: usize) -> CanonicalForm {
    graph.edge(ssta_timing::EdgeId(slot as u32)).delay.clone()
}

/// `P{dₑ ≥ M}` over the *shared* variables (globals + locals), exactly as
/// the paper evaluates equation (14) on canonical forms.
///
/// Collapsed-random convention: after propagation, the private random
/// parts of `dₑ` and `M_ij` look independent even though `dₑ`'s paths are
/// a subset of `M_ij`'s. The effect is that a fully dominant edge
/// (true criticality 1) evaluates to ≈ 0.5 rather than 1 — `θ` keeps a
/// residual `≈ √2·a_r` and the means tie. This is *conservative*: values
/// are compressed toward 0.5 and an edge is never spuriously pushed below
/// a practical pruning threshold δ (Monte-Carlo argmax tracing confirms
/// the ordering is preserved; see `EXPERIMENTS.md`). Crediting the full
/// product `r(dₑ)·r(M)` instead would make the probability hypersensitive
/// to the tiny mean discrepancies that different Clark collapse orders
/// introduce, and measurably misclassifies dominant edges.
fn criticality_probability(de: &CanonicalForm, m: &CanonicalForm) -> f64 {
    let cov = de.covariance(m);
    tightness_probability(de.mean(), de.variance(), m.mean(), m.variance(), cov)
}

/// Criticalities `c_ij` of every edge for one specific input/output pair
/// (one forward and one backward traversal). Returns a per-edge-slot
/// vector; edges outside the `(i, j)` cone hold 0.
///
/// # Errors
///
/// Propagates graph errors ([`CoreError::Timing`]).
pub fn pair_criticalities(
    graph: &TimingGraph<CanonicalForm>,
    zero: &CanonicalForm,
    vi: VertexId,
    vj: VertexId,
) -> Result<Vec<f64>, CoreError> {
    let schedule = LevelSchedule::build(graph)?;
    pair_criticalities_with(graph, &schedule, zero, vi, vj)
}

/// [`pair_criticalities`] over a prebuilt schedule, so repair loops that
/// probe many pairs levelize the graph once.
///
/// # Errors
///
/// Propagates graph errors ([`CoreError::Timing`]).
pub fn pair_criticalities_with(
    graph: &TimingGraph<CanonicalForm>,
    schedule: &LevelSchedule,
    zero: &CanonicalForm,
    vi: VertexId,
    vj: VertexId,
) -> Result<Vec<f64>, CoreError> {
    let arrival = levels::forward(graph, schedule, &[(vi, zero.clone())], 1)?;
    let required = levels::backward(graph, schedule, &[(vj, zero.clone())], 1)?;
    let n_slots = graph
        .edges_iter()
        .map(|(id, _)| id.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut out = vec![0.0; n_slots];
    let Some(m_ij) = arrival[vj.0 as usize].as_ref() else {
        return Ok(out); // pair not connected
    };
    for (id, e) in graph.edges_iter() {
        let (Some(a), Some(r)) = (
            arrival[e.from.0 as usize].as_ref(),
            required[e.to.0 as usize].as_ref(),
        ) else {
            continue;
        };
        let de = a.sum(&e.delay).sum(r);
        out[id.0 as usize] = criticality_probability(&de, m_ij);
    }
    Ok(out)
}

/// Histogram of the live edges' maximum criticalities over `[0, 1]` — the
/// paper's Fig. 6.
pub fn criticality_histogram(
    graph: &TimingGraph<CanonicalForm>,
    cms: &[f64],
    n_bins: usize,
) -> Histogram {
    let mut h = Histogram::new(0.0, 1.0, n_bins);
    for (id, _) in graph.edges_iter() {
        h.push(cms[id.0 as usize]);
    }
    h
}

/// Runs `f` once per chunk of items across `n_threads` scoped threads.
fn parallel_map_chunks<T: Sync, R: Send, E: Send>(
    items: &[T],
    n_threads: usize,
    f: impl Fn(&[T]) -> Result<R, E> + Sync,
) -> Result<Vec<R>, E> {
    let chunk_size = items.len().div_ceil(n_threads.max(1)).max(1);
    let results = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for chunk in items.chunks(chunk_size) {
            let f = &f;
            handles.push(s.spawn(move |_| f(chunk)));
        }
        let mut out = Vec::with_capacity(handles.len());
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
        out
    })
    .expect("scope panicked");
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleContext;
    use crate::params::SstaConfig;
    use ssta_netlist::generators;

    fn ctx(name: &str) -> ModuleContext {
        let n = generators::iscas85(name).unwrap();
        ModuleContext::characterize(n, &SstaConfig::paper()).unwrap()
    }

    fn adder_ctx() -> ModuleContext {
        let n = generators::ripple_carry_adder(4).unwrap();
        ModuleContext::characterize(n, &SstaConfig::paper()).unwrap()
    }

    #[test]
    fn criticalities_are_probabilities() {
        let ctx = adder_ctx();
        let cms =
            edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default()).unwrap();
        for (id, _) in ctx.graph().edges_iter() {
            let c = cms[id.0 as usize];
            assert!((0.0..=1.0).contains(&c), "cm = {c}");
        }
    }

    #[test]
    fn chain_edges_saturate_and_are_never_prunable() {
        // A pure chain: every edge is on the only path (true criticality
        // 1). Under the collapsed-random convention the tightness
        // saturates at 0.5 — far above any practical pruning threshold.
        use ssta_netlist::{library::library_90nm, Netlist, Signal};
        use std::sync::Arc;
        let lib = Arc::new(library_90nm());
        let mut b = Netlist::builder("chain", lib, 1);
        let mut s = Signal::Input(0);
        for _ in 0..5 {
            s = b.add_gate_by_name("INV", &[s]).unwrap();
        }
        b.add_output(s).unwrap();
        let ctx = ModuleContext::characterize(b.finish().unwrap(), &SstaConfig::paper()).unwrap();
        let cms =
            edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default()).unwrap();
        for (id, _) in ctx.graph().edges_iter() {
            let c = cms[id.0 as usize];
            assert!((0.49..=0.51).contains(&c), "chain edge cm = {c}");
        }
    }

    #[test]
    fn dominated_parallel_branch_has_low_criticality() {
        // Two branches input -> output: one long (3 gates), one short
        // (1 gate). The short branch's edge criticality should be ~0.
        use ssta_netlist::{library::library_90nm, Netlist, Signal};
        use std::sync::Arc;
        let lib = Arc::new(library_90nm());
        let mut b = Netlist::builder("branch", lib, 1);
        let mut long = Signal::Input(0);
        for _ in 0..4 {
            long = b
                .add_gate_by_name("NOR2", &[long, Signal::Input(0)])
                .unwrap();
        }
        let short = b.add_gate_by_name("INV", &[Signal::Input(0)]).unwrap();
        let join = b.add_gate_by_name("NAND2", &[long, short]).unwrap();
        b.add_output(join).unwrap();
        let ctx = ModuleContext::characterize(b.finish().unwrap(), &SstaConfig::paper()).unwrap();
        let cms =
            edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default()).unwrap();
        // Find the INV arc (short branch).
        let short_edges: Vec<f64> = ctx
            .graph()
            .edges_iter()
            .filter(|(_, e)| e.delay.mean() < 15.0) // INV is the fastest cell
            .map(|(id, _)| cms[id.0 as usize])
            .collect();
        assert!(!short_edges.is_empty());
        for c in short_edges {
            assert!(c < 0.05, "dominated edge cm = {c}");
        }
    }

    #[test]
    fn histogram_is_bimodal_for_benchmark_circuit() {
        // The paper's Fig. 6 observation: criticalities pile up near 0
        // and 1. Check on the smallest benchmark.
        let ctx = ctx("c432");
        let cms =
            edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default()).unwrap();
        let h = criticality_histogram(ctx.graph(), &cms, 20);
        let total = h.total() as f64;
        let low = h.counts()[0] as f64; // [0, 0.05): prunable edges
                                        // Upper mode: the 0.5 saturation band [0.45, 0.65) under the
                                        // collapsed-random convention (the paper's mode at 1.0).
        let high: f64 = h.counts()[9..13].iter().sum::<u64>() as f64;
        assert!(
            (low + high) / total > 0.6,
            "expected bimodal histogram, modes hold {:.1}%",
            100.0 * (low + high) / total
        );
    }

    #[test]
    fn full_sweep_levelizes_exactly_once() {
        // All 2·(inputs + outputs)-ish traversals of the sweep must share
        // one schedule — re-levelizing per pass is the bug this engine
        // exists to fix. (The counter is thread-local; worker threads
        // never build schedules, only the entry point does.)
        let ctx = adder_ctx();
        let before = ssta_timing::levels::schedule_builds();
        let _ =
            edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default()).unwrap();
        assert_eq!(ssta_timing::levels::schedule_builds(), before + 1);
    }

    #[test]
    fn single_thread_and_multi_thread_agree() {
        let ctx = adder_ctx();
        let a = edge_criticalities(
            ctx.graph(),
            &ctx.zero(),
            &CriticalityOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = edge_criticalities(
            ctx.graph(),
            &ctx.zero(),
            &CriticalityOptions {
                threads: 4,
                output_batch: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn prefilter_does_not_change_results_materially() {
        let ctx = adder_ctx();
        let strict = edge_criticalities(
            ctx.graph(),
            &ctx.zero(),
            &CriticalityOptions {
                prefilter_sigmas: 1e9, // effectively no filtering
                ..Default::default()
            },
        )
        .unwrap();
        let filtered =
            edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default()).unwrap();
        for (x, y) in strict.iter().zip(&filtered) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }
}
