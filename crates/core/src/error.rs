use ssta_math::MathError;
use ssta_netlist::NetlistError;
use ssta_timing::TimingError;
use std::fmt;

/// Errors produced by the SSTA core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A numerical routine failed (covariance decomposition, PCA, …).
    Math(MathError),
    /// A timing-graph algorithm failed (cycle, missing path, …).
    Timing(TimingError),
    /// Netlist construction or validation failed.
    Netlist(NetlistError),
    /// An invalid configuration value was supplied.
    Config {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Two artifacts cannot be combined (e.g. a timing model characterized
    /// with a different correlation model than the design analysis).
    Incompatible {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A serialized model payload does not decode (truncated stream, bad
    /// tag, structural inconsistency). Distinct from [`CoreError::Config`]:
    /// the defect is in stored bytes, not in caller-supplied values.
    Codec {
        /// Where and how the payload is malformed.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Math(e) => write!(f, "math error: {e}"),
            CoreError::Timing(e) => write!(f, "timing error: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::Incompatible { reason } => write!(f, "incompatible artifacts: {reason}"),
            CoreError::Codec { reason } => write!(f, "model payload does not decode: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Math(e) => Some(e),
            CoreError::Timing(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CoreError {
    fn from(e: MathError) -> Self {
        CoreError::Math(e)
    }
}

impl From<TimingError> for CoreError {
    fn from(e: TimingError) -> Self {
        CoreError::Timing(e)
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work_with_question_mark() {
        fn inner() -> Result<(), CoreError> {
            Err(MathError::EmptyInput { context: "test" })?
        }
        assert!(matches!(inner(), Err(CoreError::Math(_))));
    }

    #[test]
    fn source_chain_is_preserved() {
        let e = CoreError::Timing(TimingError::CyclicGraph);
        assert!(std::error::Error::source(&e).is_some());
    }
}
