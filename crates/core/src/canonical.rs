//! The canonical first-order delay form (Section II of the paper).
//!
//! Every delay and arrival time is
//!
//! `D = a₀ + Σ_p a_g,p · x_g,p + Σ_i a_i · x_i + a_r · x_r`
//!
//! where `x_g,p` is the global variation of process parameter `p` (the
//! paper folds all parameters into a single `x_g`; we keep one per
//! parameter, which is strictly more faithful when several parameters vary
//! independently), `x_i` are the unit-variance PCA components of the
//! spatially correlated local variation, and `x_r` is a purely random
//! variable private to this delay. All `x` are independent N(0, 1).
//!
//! * [`CanonicalForm::sum`] is exact: coefficients add, and the two private
//!   random terms collapse into one by variance matching
//!   (`c_r = √(a_r² + b_r²)`), as in the paper.
//! * [`CanonicalForm::maximum`] is Clark's moment matching: mean/variance
//!   from equations (7)–(8), shared coefficients by tightness-probability
//!   blending (`m_i = TP·a_i + (1−TP)·b_i`), and the random coefficient
//!   re-fitted so the total variance matches equation (8).

use crate::CoreError;
use serde::{Deserialize, Serialize};
use ssta_math::{clark_max, normal_cdf, normal_quantile};
use ssta_timing::DelayAlgebra;

/// A first-order Gaussian delay form. See the module-level documentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalForm {
    nominal: f64,
    globals: Vec<f64>,
    locals: Vec<f64>,
    random: f64,
}

impl CanonicalForm {
    /// A deterministic constant (no variation) with the given variable
    /// space dimensions.
    pub fn constant(nominal: f64, n_globals: usize, n_locals: usize) -> Self {
        CanonicalForm {
            nominal,
            globals: vec![0.0; n_globals],
            locals: vec![0.0; n_locals],
            random: 0.0,
        }
    }

    /// Builds a form from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if `random` is negative or any
    /// coefficient is non-finite.
    pub fn from_parts(
        nominal: f64,
        globals: Vec<f64>,
        locals: Vec<f64>,
        random: f64,
    ) -> Result<Self, CoreError> {
        if random < 0.0 {
            return Err(CoreError::Config {
                reason: format!("random coefficient must be non-negative, got {random}"),
            });
        }
        let all_finite = nominal.is_finite()
            && random.is_finite()
            && globals.iter().all(|c| c.is_finite())
            && locals.iter().all(|c| c.is_finite());
        if !all_finite {
            return Err(CoreError::Config {
                reason: "canonical form coefficients must be finite".into(),
            });
        }
        Ok(CanonicalForm {
            nominal,
            globals,
            locals,
            random,
        })
    }

    /// The mean `a₀`.
    pub fn mean(&self) -> f64 {
        self.nominal
    }

    /// Global coefficients, one per process parameter.
    pub fn globals(&self) -> &[f64] {
        &self.globals
    }

    /// Local (PCA component) coefficients.
    pub fn locals(&self) -> &[f64] {
        &self.locals
    }

    /// The private random coefficient `a_r ≥ 0`.
    pub fn random(&self) -> f64 {
        self.random
    }

    /// The variance `Σ a_g² + Σ a_i² + a_r²` (all variables are N(0, 1)).
    pub fn variance(&self) -> f64 {
        sq_sum(&self.globals) + sq_sum(&self.locals) + self.random * self.random
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Covariance with another form: shared variables only (the private
    /// random parts are independent by definition).
    ///
    /// # Panics
    ///
    /// Panics if the variable-space dimensions differ.
    pub fn covariance(&self, other: &CanonicalForm) -> f64 {
        assert_dims(self, other);
        dot(&self.globals, &other.globals) + dot(&self.locals, &other.locals)
    }

    /// Correlation coefficient with another form; 0 when either is
    /// deterministic.
    pub fn correlation(&self, other: &CanonicalForm) -> f64 {
        let denom = self.std_dev() * other.std_dev();
        if denom <= 0.0 {
            0.0
        } else {
            (self.covariance(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// `P{D ≤ t}` under the Gaussian model.
    pub fn cdf(&self, t: f64) -> f64 {
        let sd = self.std_dev();
        if sd <= 0.0 {
            return if t >= self.nominal { 1.0 } else { 0.0 };
        }
        normal_cdf((t - self.nominal) / sd)
    }

    /// The delay at a given yield (quantile), e.g. `quantile(0.9973)` for
    /// the 3σ point.
    pub fn quantile(&self, p: f64) -> f64 {
        self.nominal + self.std_dev() * normal_quantile(p)
    }

    /// Evaluates the form for a concrete assignment of the variables.
    ///
    /// `random_value` is the realisation of this form's private variable.
    ///
    /// # Panics
    ///
    /// Panics if the assignment dimensions differ from the form's.
    pub fn evaluate(&self, globals: &[f64], locals: &[f64], random_value: f64) -> f64 {
        assert_eq!(globals.len(), self.globals.len(), "global dim mismatch");
        assert_eq!(locals.len(), self.locals.len(), "local dim mismatch");
        self.nominal
            + dot(&self.globals, globals)
            + dot(&self.locals, locals)
            + self.random * random_value
    }

    /// The exact sum `A + B`.
    ///
    /// # Panics
    ///
    /// Panics if the variable-space dimensions differ.
    pub fn sum(&self, other: &CanonicalForm) -> CanonicalForm {
        assert_dims(self, other);
        CanonicalForm {
            nominal: self.nominal + other.nominal,
            globals: add_vec(&self.globals, &other.globals),
            locals: add_vec(&self.locals, &other.locals),
            random: (self.random * self.random + other.random * other.random).sqrt(),
        }
    }

    /// Clark's moment-matched `max{A, B}` (equations (6)–(9) of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the variable-space dimensions differ.
    pub fn maximum(&self, other: &CanonicalForm) -> CanonicalForm {
        assert_dims(self, other);
        let moments = clark_max(
            self.nominal,
            self.variance(),
            other.nominal,
            other.variance(),
            self.covariance(other),
        );
        let tp = moments.tightness;
        if tp >= 1.0 {
            return self.clone();
        }
        if tp <= 0.0 {
            return other.clone();
        }
        let globals = blend(&self.globals, &other.globals, tp);
        let locals = blend(&self.locals, &other.locals, tp);
        // Re-fit the private random part so the form's total variance
        // matches Clark's variance (equation (8)); clamp at zero when the
        // blended shared part already over-explains it.
        let shared = sq_sum(&globals) + sq_sum(&locals);
        let random = (moments.variance - shared).max(0.0).sqrt();
        CanonicalForm {
            nominal: moments.mean,
            globals,
            locals,
            random,
        }
    }

    /// The moment-matched `min{A, B}` via `−max{−A, −B}`.
    ///
    /// # Panics
    ///
    /// Panics if the variable-space dimensions differ.
    pub fn minimum(&self, other: &CanonicalForm) -> CanonicalForm {
        self.negated().maximum(&other.negated()).negated()
    }

    /// The negated form `−D` (the random coefficient stays non-negative;
    /// `x_r` is symmetric).
    pub fn negated(&self) -> CanonicalForm {
        CanonicalForm {
            nominal: -self.nominal,
            globals: self.globals.iter().map(|c| -c).collect(),
            locals: self.locals.iter().map(|c| -c).collect(),
            random: self.random,
        }
    }

    /// Scales the form by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `k < 0` (use [`negated`](Self::negated) for sign flips).
    pub fn scaled(&self, k: f64) -> CanonicalForm {
        assert!(k >= 0.0, "scale factor must be non-negative");
        CanonicalForm {
            nominal: self.nominal * k,
            globals: self.globals.iter().map(|c| c * k).collect(),
            locals: self.locals.iter().map(|c| c * k).collect(),
            random: self.random * k,
        }
    }

    /// Replaces the local coefficient vector (used by the hierarchical
    /// variable-replacement step); globals and random are preserved.
    pub fn with_locals(&self, locals: Vec<f64>) -> CanonicalForm {
        CanonicalForm {
            nominal: self.nominal,
            globals: self.globals.clone(),
            locals,
            random: self.random,
        }
    }

    /// Number of global coefficients.
    pub fn n_globals(&self) -> usize {
        self.globals.len()
    }

    /// Number of local coefficients.
    pub fn n_locals(&self) -> usize {
        self.locals.len()
    }
}

impl DelayAlgebra for CanonicalForm {
    fn sum(&self, other: &Self) -> Self {
        CanonicalForm::sum(self, other)
    }

    fn maximum(&self, other: &Self) -> Self {
        CanonicalForm::maximum(self, other)
    }

    fn nominal(&self) -> f64 {
        self.nominal
    }
}

fn assert_dims(a: &CanonicalForm, b: &CanonicalForm) {
    assert_eq!(
        a.globals.len(),
        b.globals.len(),
        "canonical forms live in different global spaces"
    );
    assert_eq!(
        a.locals.len(),
        b.locals.len(),
        "canonical forms live in different local spaces"
    );
}

fn sq_sum(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn add_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn blend(a: &[f64], b: &[f64], tp: f64) -> Vec<f64> {
    a.iter()
        .zip(b)
        .map(|(x, y)| tp * x + (1.0 - tp) * y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn form(nominal: f64, g: &[f64], l: &[f64], r: f64) -> CanonicalForm {
        CanonicalForm::from_parts(nominal, g.to_vec(), l.to_vec(), r).unwrap()
    }

    #[test]
    fn constant_has_zero_variance() {
        let c = CanonicalForm::constant(5.0, 2, 3);
        assert_eq!(c.mean(), 5.0);
        assert_eq!(c.variance(), 0.0);
        assert_eq!(c.cdf(5.0), 1.0);
        assert_eq!(c.cdf(4.999), 0.0);
    }

    #[test]
    fn from_parts_rejects_negative_random() {
        assert!(CanonicalForm::from_parts(1.0, vec![], vec![], -0.1).is_err());
    }

    #[test]
    fn from_parts_rejects_nan() {
        assert!(CanonicalForm::from_parts(f64::NAN, vec![], vec![], 0.0).is_err());
        assert!(CanonicalForm::from_parts(0.0, vec![f64::INFINITY], vec![], 0.0).is_err());
    }

    #[test]
    fn sum_is_exact() {
        let a = form(10.0, &[1.0, 0.0], &[2.0], 3.0);
        let b = form(20.0, &[0.5, 1.0], &[-1.0], 4.0);
        let s = a.sum(&b);
        assert_eq!(s.mean(), 30.0);
        assert_eq!(s.globals(), &[1.5, 1.0]);
        assert_eq!(s.locals(), &[1.0]);
        assert_eq!(s.random(), 5.0); // sqrt(9 + 16)
                                     // Exact: Var(A+B) = Var(A) + Var(B) + 2 Cov(A,B).
        let want = a.variance() + b.variance() + 2.0 * a.covariance(&b);
        assert!((s.variance() - want).abs() < 1e-12);
    }

    #[test]
    fn covariance_uses_shared_variables_only() {
        let a = form(0.0, &[1.0], &[2.0, 0.0], 10.0);
        let b = form(0.0, &[3.0], &[0.5, 1.0], 20.0);
        assert_eq!(a.covariance(&b), 3.0 + 1.0);
    }

    #[test]
    fn maximum_of_identical_forms_is_identity() {
        let a = form(10.0, &[1.0], &[0.5], 0.0);
        let m = a.maximum(&a.clone());
        assert!((m.mean() - a.mean()).abs() < 1e-12);
        assert!((m.variance() - a.variance()).abs() < 1e-12);
    }

    #[test]
    fn maximum_with_dominant_operand_returns_it() {
        let a = form(100.0, &[1.0], &[], 1.0);
        let b = form(0.0, &[1.0], &[], 1.0);
        let m = a.maximum(&b);
        assert_eq!(m, a);
        let m2 = b.maximum(&a);
        assert_eq!(m2, a);
    }

    #[test]
    fn maximum_mean_exceeds_both_operands() {
        let a = form(10.0, &[2.0], &[1.0], 1.0);
        let b = form(10.5, &[1.0], &[2.0], 0.5);
        let m = a.maximum(&b);
        assert!(m.mean() >= a.mean().max(b.mean()) - 1e-12);
    }

    #[test]
    fn maximum_matches_clark_moments() {
        let a = form(10.0, &[2.0], &[1.0], 1.0);
        let b = form(11.0, &[1.0], &[2.0], 2.0);
        let clark = clark_max(
            a.mean(),
            a.variance(),
            b.mean(),
            b.variance(),
            a.covariance(&b),
        );
        let m = a.maximum(&b);
        assert!((m.mean() - clark.mean).abs() < 1e-12);
        // Variance matches unless the clamp kicked in (it doesn't here).
        assert!((m.variance() - clark.variance).abs() < 1e-9);
    }

    #[test]
    fn maximum_against_monte_carlo() {
        use rand::Rng;
        let a = form(10.0, &[1.5], &[1.0], 0.5);
        let b = form(10.8, &[0.5], &[1.8], 1.0);
        let m = a.maximum(&b);

        let mut rng = ssta_math::rng::seeded_rng(42);
        let mut normal = ssta_math::rng::NormalSampler::new();
        let n = 200_000;
        let mut s = ssta_math::Summary::new();
        for _ in 0..n {
            let g = [normal.sample(&mut rng)];
            let l = [normal.sample(&mut rng)];
            let ra: f64 = normal.sample(&mut rng);
            let rb: f64 = normal.sample(&mut rng);
            let va = a.evaluate(&g, &l, ra);
            let vb = b.evaluate(&g, &l, rb);
            s.push(va.max(vb));
            let _ = rng.gen::<f64>(); // decorrelate streams a little
        }
        assert!(
            (m.mean() - s.mean()).abs() < 0.02,
            "mean {} vs MC {}",
            m.mean(),
            s.mean()
        );
        assert!(
            (m.std_dev() - s.std_dev()).abs() < 0.03,
            "std {} vs MC {}",
            m.std_dev(),
            s.std_dev()
        );
    }

    #[test]
    fn minimum_is_dual_of_maximum() {
        let a = form(10.0, &[1.0], &[2.0], 1.0);
        let b = form(12.0, &[2.0], &[1.0], 1.0);
        let mn = a.minimum(&b);
        assert!(mn.mean() <= a.mean().min(b.mean()) + 1e-12);
    }

    #[test]
    fn negation_round_trips() {
        let a = form(10.0, &[1.0, -2.0], &[0.5], 3.0);
        let back = a.negated().negated();
        assert_eq!(a, back);
        assert_eq!(a.negated().mean(), -10.0);
        assert_eq!(a.negated().variance(), a.variance());
    }

    #[test]
    fn scaling_scales_mean_and_std() {
        let a = form(10.0, &[1.0], &[2.0], 2.0);
        let s = a.scaled(2.0);
        assert_eq!(s.mean(), 20.0);
        assert!((s.std_dev() - 2.0 * a.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn quantile_cdf_round_trip() {
        let a = form(100.0, &[5.0], &[3.0], 2.0);
        for p in [0.01, 0.3, 0.5, 0.9, 0.9973] {
            let t = a.quantile(p);
            assert!((a.cdf(t) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn evaluate_matches_moments_statistically() {
        let a = form(50.0, &[2.0, 1.0], &[3.0], 4.0);
        let mut rng = ssta_math::rng::seeded_rng(7);
        let mut normal = ssta_math::rng::NormalSampler::new();
        let s: ssta_math::Summary = (0..100_000)
            .map(|_| {
                let g = [normal.sample(&mut rng), normal.sample(&mut rng)];
                let l = [normal.sample(&mut rng)];
                a.evaluate(&g, &l, normal.sample(&mut rng))
            })
            .collect();
        assert!((s.mean() - 50.0).abs() < 0.1);
        assert!((s.std_dev() - a.std_dev()).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "different local spaces")]
    fn dimension_mismatch_panics() {
        let a = CanonicalForm::constant(0.0, 1, 2);
        let b = CanonicalForm::constant(0.0, 1, 3);
        let _ = a.sum(&b);
    }

    #[test]
    fn delay_algebra_impl_is_consistent() {
        use ssta_timing::DelayAlgebra as DA;
        let a = form(1.0, &[1.0], &[], 0.0);
        let b = form(2.0, &[0.0], &[], 1.0);
        assert_eq!(DA::sum(&a, &b).mean(), 3.0);
        assert_eq!(DA::nominal(&a), 1.0);
        let m1 = DA::maximum(&a, &b);
        let m2 = CanonicalForm::maximum(&a, &b);
        assert_eq!(m1, m2);
    }

    #[test]
    fn correlation_is_bounded() {
        let a = form(0.0, &[1.0], &[1.0], 0.0);
        let b = form(0.0, &[1.0], &[1.0], 0.0);
        assert!((a.correlation(&b) - 1.0).abs() < 1e-12);
        let c = form(0.0, &[1.0], &[-1.0], 0.0);
        assert!(a.correlation(&c).abs() < 1e-12);
        let constant = CanonicalForm::constant(1.0, 1, 1);
        assert_eq!(a.correlation(&constant), 0.0);
    }
}
