//! Deterministic fork-join helpers — re-exported from
//! [`ssta_math::parallel`].
//!
//! The helpers were hoisted below the timing crate so that levelized
//! propagation ([`ssta_timing::levels`]) can thread wavefronts with the
//! same machinery the assembly and engine pipelines use. This module
//! keeps the historical `ssta_core::parallel` paths working; new code
//! can import from either place.

pub use ssta_math::parallel::{effective_threads, parallel_indexed, try_parallel_indexed};
