//! Delay-yield utilities.
//!
//! SSTA's selling point (Section I of the paper): instead of one corner
//! number, the analysis yields a delay *distribution*, from which
//! designers read timing yield at a target period or the period needed
//! for a target yield.

use crate::canonical::CanonicalForm;

/// A point on a delay CDF curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Delay value.
    pub delay: f64,
    /// `P{D ≤ delay}`.
    pub probability: f64,
}

/// Timing yield at a clock period: `P{delay ≤ period}`.
pub fn timing_yield(delay: &CanonicalForm, period: f64) -> f64 {
    delay.cdf(period)
}

/// The clock period achieving a target yield.
pub fn period_for_yield(delay: &CanonicalForm, yield_target: f64) -> f64 {
    delay.quantile(yield_target)
}

/// Samples the analytic CDF of a delay form on `n` points spanning
/// `mean ± span_sigmas·σ` — the curves plotted in the paper's Fig. 7.
///
/// # Panics
///
/// Panics if `n < 2` or `span_sigmas <= 0`.
pub fn cdf_curve(delay: &CanonicalForm, n: usize, span_sigmas: f64) -> Vec<CdfPoint> {
    assert!(n >= 2, "need at least two points");
    assert!(span_sigmas > 0.0, "span must be positive");
    let lo = delay.mean() - span_sigmas * delay.std_dev();
    let hi = delay.mean() + span_sigmas * delay.std_dev();
    (0..n)
        .map(|i| {
            let d = lo + (hi - lo) * i as f64 / (n - 1) as f64;
            CdfPoint {
                delay: d,
                probability: delay.cdf(d),
            }
        })
        .collect()
}

/// The pessimism of a corner STA number relative to a statistical quantile:
/// `corner_delay − quantile(yield_target)`, positive when the corner
/// over-constrains the design.
pub fn corner_pessimism(delay: &CanonicalForm, corner_delay: f64, yield_target: f64) -> f64 {
    corner_delay - period_for_yield(delay, yield_target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn form() -> CanonicalForm {
        CanonicalForm::from_parts(100.0, vec![3.0], vec![4.0], 0.0).unwrap() // σ = 5
    }

    #[test]
    fn yield_at_mean_is_half() {
        assert!((timing_yield(&form(), 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn period_and_yield_are_inverse() {
        let f = form();
        for y in [0.1, 0.5, 0.9, 0.9973] {
            let p = period_for_yield(&f, y);
            assert!((timing_yield(&f, p) - y).abs() < 1e-10);
        }
    }

    #[test]
    fn cdf_curve_is_monotone_and_spans_probabilities() {
        let pts = cdf_curve(&form(), 101, 4.0);
        assert_eq!(pts.len(), 101);
        for w in pts.windows(2) {
            assert!(w[1].probability >= w[0].probability);
            assert!(w[1].delay > w[0].delay);
        }
        assert!(pts[0].probability < 0.01);
        assert!(pts[100].probability > 0.99);
    }

    #[test]
    fn corner_pessimism_positive_for_conservative_corner() {
        let f = form();
        // A 3-sigma-per-parameter worst corner is far beyond the 99.73%
        // quantile of the distribution when parameters are independent.
        let corner = 100.0 + 3.0 * (3.0 + 4.0); // naive sum of 3σ moves
        assert!(corner_pessimism(&f, corner, 0.9973) > 0.0);
    }
}
