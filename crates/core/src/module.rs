//! Module characterization: netlist + placement + variation model →
//! a statistical timing graph in canonical form.
//!
//! This is the "original timing graph" side of the paper: before any model
//! extraction, every cell arc becomes an edge whose canonical delay form
//! encodes the arc's sensitivity to each process parameter, split into the
//! global share, the spatially-correlated local share (projected through
//! the module's PCA basis at the cell's grid) and the private random
//! share.

use crate::canonical::CanonicalForm;
use crate::params::{SstaConfig, VariableLayout};
use crate::spatial::GridGeometry;
use crate::CoreError;
use ssta_math::{PcaBasis, Summary};
use ssta_netlist::{Netlist, Placement};
use ssta_timing::{allpairs, DelayMatrix, TimingGraph};
use std::sync::Arc;

/// A characterized combinational module: the original statistical timing
/// graph plus everything needed to extract a timing model from it and to
/// re-embed it in a hierarchical design (grid geometry, PCA bases).
#[derive(Debug, Clone)]
pub struct ModuleContext {
    netlist: Arc<Netlist>,
    placement: Arc<Placement>,
    geometry: GridGeometry,
    layout: VariableLayout,
    /// One PCA basis per parameter. The paper uses a common correlation
    /// model for all parameters, so the bases share one decomposition;
    /// they are stored per parameter to allow future heterogeneity.
    pca: Vec<Arc<PcaBasis>>,
    graph: TimingGraph<CanonicalForm>,
    config: SstaConfig,
}

impl ModuleContext {
    /// Characterizes a module under the given configuration: places it,
    /// partitions its die into grids, decomposes the grid correlation with
    /// PCA, and annotates every timing arc with a canonical delay form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for invalid configurations and
    /// propagates netlist/PCA failures.
    pub fn characterize(netlist: Netlist, config: &SstaConfig) -> Result<Self, CoreError> {
        config.validate()?;
        netlist.validate()?;
        let placement = Placement::rows(&netlist, config.cell_pitch_um);
        let geometry = GridGeometry::from_die(placement.die(), config.grid_pitch_um());

        let cov = config
            .correlation
            .covariance_matrix(&geometry.centers(), geometry.pitch());
        let basis = Arc::new(PcaBasis::from_covariance(&cov, config.pca)?);
        let pca: Vec<Arc<PcaBasis>> = config
            .parameters
            .iter()
            .map(|_| Arc::clone(&basis))
            .collect();

        let layout =
            VariableLayout::new(&pca.iter().map(|b| b.n_components()).collect::<Vec<usize>>());

        let graph = build_graph(&netlist, &placement, &geometry, &layout, &pca, config);
        Ok(ModuleContext {
            netlist: Arc::new(netlist),
            placement: Arc::new(placement),
            geometry,
            layout,
            pca,
            graph,
            config: config.clone(),
        })
    }

    /// The module netlist.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The module placement (module-local coordinates).
    pub fn placement(&self) -> &Arc<Placement> {
        &self.placement
    }

    /// The grid partition of the module die.
    pub fn geometry(&self) -> GridGeometry {
        self.geometry
    }

    /// Layout of the module's independent-variable space.
    pub fn layout(&self) -> &VariableLayout {
        &self.layout
    }

    /// Per-parameter PCA bases.
    pub fn pca(&self) -> &[Arc<PcaBasis>] {
        &self.pca
    }

    /// The original statistical timing graph.
    pub fn graph(&self) -> &TimingGraph<CanonicalForm> {
        &self.graph
    }

    /// Number of edges in the original graph (the paper's `Eo`).
    pub fn graph_edge_count(&self) -> usize {
        self.graph.n_edges()
    }

    /// Number of vertices in the original graph (the paper's `Vo`).
    pub fn graph_vertex_count(&self) -> usize {
        self.graph.n_vertices()
    }

    /// The configuration used for characterization.
    pub fn config(&self) -> &SstaConfig {
        &self.config
    }

    /// A zero-delay constant in this module's variable space.
    pub fn zero(&self) -> CanonicalForm {
        CanonicalForm::constant(0.0, self.config.parameters.len(), self.layout.n_locals())
    }

    /// The statistical input/output delay matrix of the original graph
    /// (the quantity a timing model must preserve, Section III).
    ///
    /// # Errors
    ///
    /// Propagates graph errors (cannot occur for netlist-derived graphs).
    pub fn delay_matrix(&self) -> Result<DelayMatrix<CanonicalForm>, CoreError> {
        Ok(allpairs::delay_matrix(&self.graph, || self.zero())?)
    }

    /// Extracts a compressed gray-box timing model (Section IV).
    ///
    /// # Errors
    ///
    /// Propagates criticality/graph errors.
    pub fn extract_model(
        &self,
        options: &crate::extract::ExtractOptions,
    ) -> Result<crate::extract::TimingModel, CoreError> {
        crate::extract::extract(self, options)
    }

    /// Summary of per-edge delay σ/mean ratios — a quick sanity metric for
    /// the variation model.
    pub fn variation_summary(&self) -> Summary {
        self.graph
            .edges_iter()
            .map(|(_, e)| e.delay.std_dev() / e.delay.mean().max(1e-12))
            .collect()
    }
}

fn build_graph(
    netlist: &Netlist,
    placement: &Placement,
    geometry: &GridGeometry,
    layout: &VariableLayout,
    pca: &[Arc<PcaBasis>],
    config: &SstaConfig,
) -> TimingGraph<CanonicalForm> {
    let shares = &config.correlation;
    let sg = shares.global_share.sqrt();
    let sl = shares.local_share.sqrt();
    let sr = shares.random_share.sqrt();
    let n_globals = config.parameters.len();
    let n_locals = layout.n_locals();

    TimingGraph::from_netlist(netlist, |arc| {
        let d0 = arc.nominal_ps();
        let cell = arc.cell();
        let grid = geometry.grid_of(placement.gate_position(arc.gate));

        let mut globals = vec![0.0; n_globals];
        let mut locals = vec![0.0; n_locals];
        let mut random_var = 0.0;
        for (p, spec) in config.parameters.iter().enumerate() {
            // First-order magnitude of this arc's delay response to a 1σ
            // move of parameter p.
            let base = d0 * cell.sensitivity().get(spec.param) * spec.sigma_rel;
            globals[p] = base * sg;
            // The grid's unit-variance local variable decomposes onto the
            // PCA components via row `grid` of the transform.
            let row = pca[p].transform().row(grid);
            let block = layout.local_range(p);
            for (slot, &t) in locals[block].iter_mut().zip(row) {
                *slot = base * sl * t;
            }
            random_var += (base * sr) * (base * sr);
        }
        CanonicalForm::from_parts(d0, globals, locals, random_var.sqrt())
            .expect("finite construction")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_netlist::generators;
    use ssta_timing::DelayAlgebra;

    fn small_ctx() -> ModuleContext {
        let n = generators::ripple_carry_adder(4).unwrap();
        ModuleContext::characterize(n, &SstaConfig::paper()).unwrap()
    }

    #[test]
    fn graph_size_matches_netlist_stats() {
        let ctx = small_ctx();
        let stats = ctx.netlist().stats();
        assert_eq!(ctx.graph_edge_count(), stats.pin_connections);
        assert_eq!(ctx.graph_vertex_count(), stats.inputs + stats.gates);
    }

    #[test]
    fn every_edge_has_full_variation_structure() {
        let ctx = small_ctx();
        for (_, e) in ctx.graph().edges_iter() {
            let d = &e.delay;
            assert!(d.mean() > 0.0);
            assert!(d.variance() > 0.0);
            assert!(d.random() > 0.0, "random share present");
            assert!(d.globals().iter().all(|&g| g > 0.0), "global coefficients");
            assert!(
                d.locals().iter().any(|&l| l.abs() > 0.0),
                "local coefficients"
            );
        }
    }

    #[test]
    fn edge_variance_decomposition_matches_shares() {
        // For a single edge, the variance split must equal the configured
        // global/local/random shares (PCA preserves the local variance).
        let ctx = small_ctx();
        let shares = ctx.config().correlation;
        let (_, e) = ctx.graph().edges_iter().next().unwrap();
        let d = &e.delay;
        let gv: f64 = d.globals().iter().map(|x| x * x).sum();
        let lv: f64 = d.locals().iter().map(|x| x * x).sum();
        let rv = d.random() * d.random();
        let total = gv + lv + rv;
        assert!((gv / total - shares.global_share).abs() < 1e-9);
        assert!((lv / total - shares.local_share).abs() < 1e-9);
        assert!((rv / total - shares.random_share).abs() < 1e-9);
    }

    #[test]
    fn nearby_edges_correlate_more_than_distant_ones() {
        // Use a bigger module so grid distances actually vary.
        let n = generators::iscas85("c880").unwrap();
        let ctx = ModuleContext::characterize(n, &SstaConfig::paper()).unwrap();
        let edges: Vec<&CanonicalForm> = ctx.graph().edges_iter().map(|(_, e)| &e.delay).collect();
        // "Self"-correlation through the shared-variable API equals
        // 1 - random_share (the private random parts never correlate).
        let first = edges.first().unwrap();
        let last = edges.last().unwrap();
        let self_corr = first.correlation(first);
        let expected = 1.0 - ctx.config().correlation.random_share;
        assert!(
            (self_corr - expected).abs() < 1e-9,
            "self correlation {self_corr} != {expected}"
        );
        // First and last gates sit in distant grids: they correlate less
        // than an edge with itself, but at least at the global floor.
        let cross = first.correlation(last);
        assert!(cross < self_corr);
        assert!(cross > 0.0, "global share always correlates");
    }

    #[test]
    fn delay_matrix_entries_are_positive_forms() {
        let ctx = small_ctx();
        let m = ctx.delay_matrix().unwrap();
        assert!(m.n_connected() > 0);
        for (_, _, d) in m.iter() {
            assert!(d.mean() > 0.0);
            assert!(d.std_dev() > 0.0);
        }
    }

    #[test]
    fn relative_variation_is_plausible() {
        // With the paper's sigmas, delay σ/mean per arc lands around
        // 14-16 % (dominated by L at 15.7 % with sensitivity ~0.9).
        let ctx = small_ctx();
        let s = ctx.variation_summary();
        assert!(s.mean() > 0.08 && s.mean() < 0.25, "σ/mean = {}", s.mean());
    }

    #[test]
    fn zero_is_additive_identity() {
        let ctx = small_ctx();
        let (_, e) = ctx.graph().edges_iter().next().unwrap();
        let z = ctx.zero();
        let s = DelayAlgebra::sum(&z, &e.delay);
        assert_eq!(s, e.delay);
    }

    #[test]
    fn characterization_is_deterministic() {
        let a = small_ctx();
        let b = small_ctx();
        let (_, ea) = a.graph().edges_iter().next().unwrap();
        let (_, eb) = b.graph().edges_iter().next().unwrap();
        assert_eq!(ea.delay, eb.delay);
    }
}
