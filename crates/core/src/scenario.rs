//! Scenario overlays: named what-if variations of an analysis setup.
//!
//! The extraction flow's whole economics rest on reuse — the same IP
//! block analyzed under many designs, corners and configurations, with
//! the characterization cost amortized across them. A
//! [`ScenarioOverlay`] captures one such variation as a *delta* over a
//! base setup: an optional replacement [`SstaConfig`] and/or
//! [`ExtractOptions`] (both feed the module fingerprint, so changing
//! them re-keys the cached models), plus analysis-level knobs that
//! deliberately do **not** touch extraction — the correlation-handling
//! mode of the top-level analysis and an optional yield target read off
//! the final delay distribution.
//!
//! The split matters for caching: two scenarios whose resolved
//! `(SstaConfig, ExtractOptions)` are equal produce equal module
//! fingerprints and therefore *share* extracted models, no matter how
//! their analysis-level knobs differ. The fingerprint machinery
//! ([`crate::fingerprint`]) enforces this by construction — the overlay
//! type just makes the boundary explicit in the API.

use crate::extract::ExtractOptions;
use crate::hier::CorrelationMode;
use crate::params::SstaConfig;
use crate::spatial::CorrelationModel;

/// A named-scenario delta over a base `(SstaConfig, ExtractOptions,
/// CorrelationMode)` triple.
///
/// Every field is optional; an empty overlay reproduces the base setup
/// exactly. `config`, `extract`, `sigma_scale` and `correlation` are
/// extraction-relevant (they change module fingerprints and thus cache
/// keys); `mode` and `yield_target_ps` are analysis-level only and never
/// invalidate a cached model.
///
/// The small knobs (`sigma_scale`, `correlation`) exist so corner-grid
/// axes can express "scale every sigma by 1.3" or "tighten spatial
/// correlation" without cloning and hand-editing a whole `SstaConfig`
/// per grid point — and so two axes touching *different* knobs compose
/// via [`ScenarioOverlay::layered`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioOverlay {
    /// Replaces the base analysis configuration (extraction-relevant).
    pub config: Option<SstaConfig>,
    /// Replaces the base extraction options (extraction-relevant).
    pub extract: Option<ExtractOptions>,
    /// Multiplies every parameter's `sigma_rel` in the resolved config
    /// (extraction-relevant). Applied after any `config` replacement;
    /// composes multiplicatively under [`ScenarioOverlay::layered`].
    pub sigma_scale: Option<f64>,
    /// Replaces the spatial-correlation model of the resolved config
    /// (extraction-relevant). Applied after any `config` replacement.
    pub correlation: Option<CorrelationModel>,
    /// Overrides the correlation handling of the top-level analysis
    /// (analysis-level: cached models are shared with the base).
    pub mode: Option<CorrelationMode>,
    /// Reports parametric yield `P{delay ≤ target}` at this clock
    /// target, in ps (analysis-level: cached models are shared with the
    /// base).
    pub yield_target_ps: Option<f64>,
}

impl ScenarioOverlay {
    /// An empty overlay: the base setup, unchanged.
    pub fn new() -> Self {
        ScenarioOverlay::default()
    }

    /// Replaces the analysis configuration.
    pub fn with_config(mut self, config: SstaConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Replaces the extraction options.
    pub fn with_extract(mut self, extract: ExtractOptions) -> Self {
        self.extract = Some(extract);
        self
    }

    /// Overrides the top-level correlation mode.
    pub fn with_mode(mut self, mode: CorrelationMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Requests a yield read-out at `target_ps`.
    pub fn with_yield_target(mut self, target_ps: f64) -> Self {
        self.yield_target_ps = Some(target_ps);
        self
    }

    /// Scales every parameter sigma in the resolved config by `scale`.
    pub fn with_sigma_scale(mut self, scale: f64) -> Self {
        self.sigma_scale = Some(scale);
        self
    }

    /// Replaces the spatial-correlation model of the resolved config.
    pub fn with_correlation(mut self, correlation: CorrelationModel) -> Self {
        self.correlation = Some(correlation);
        self
    }

    /// Whether this overlay can change module fingerprints (i.e. touches
    /// the characterization/extraction inputs). Note the converse does
    /// not hold: replacing the config with a value *equal* to the base
    /// still yields the base fingerprints — keys are content-derived,
    /// never identity-derived.
    pub fn touches_extraction_inputs(&self) -> bool {
        self.config.is_some()
            || self.extract.is_some()
            || self.sigma_scale.is_some()
            || self.correlation.is_some()
    }

    /// Layers `upper` over this overlay, producing the composed delta a
    /// grid point on two axes would apply.
    ///
    /// Set fields of `upper` win over this overlay's, with one
    /// exception: `sigma_scale` *composes multiplicatively* — a process
    /// axis scaling sigmas by 1.3 and an aging axis scaling by 1.1
    /// yield a combined 1.43×, which is what stacked variation sources
    /// mean physically. Axes that must not fight should touch disjoint
    /// fields.
    pub fn layered(&self, upper: &ScenarioOverlay) -> ScenarioOverlay {
        ScenarioOverlay {
            config: upper.config.clone().or_else(|| self.config.clone()),
            extract: upper.extract.clone().or_else(|| self.extract.clone()),
            sigma_scale: match (self.sigma_scale, upper.sigma_scale) {
                (Some(a), Some(b)) => Some(a * b),
                (a, b) => b.or(a),
            },
            correlation: upper.correlation.or(self.correlation),
            mode: upper.mode.or(self.mode),
            yield_target_ps: upper.yield_target_ps.or(self.yield_target_ps),
        }
    }

    /// Resolves the overlay against a base setup, returning the
    /// effective `(config, extract, mode)` triple for this scenario.
    ///
    /// Resolution order: `config` replaces the base wholesale, then
    /// `correlation` replaces the spatial model, then `sigma_scale`
    /// multiplies every parameter sigma. Scaled sigmas are not clamped;
    /// a scale pushing `sigma_rel` out of `(0, 1)` surfaces as a config
    /// validation error downstream rather than silently saturating.
    pub fn resolve(
        &self,
        base_config: &SstaConfig,
        base_extract: &ExtractOptions,
        base_mode: CorrelationMode,
    ) -> (SstaConfig, ExtractOptions, CorrelationMode) {
        let mut config = self.config.clone().unwrap_or_else(|| base_config.clone());
        if let Some(correlation) = self.correlation {
            config.correlation = correlation;
        }
        if let Some(scale) = self.sigma_scale {
            for p in &mut config.parameters {
                p.sigma_rel *= scale;
            }
        }
        (
            config,
            self.extract.clone().unwrap_or_else(|| base_extract.clone()),
            self.mode.unwrap_or(base_mode),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::module_fingerprint;
    use ssta_netlist::generators;

    #[test]
    fn empty_overlay_resolves_to_the_base() {
        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (c, e, m) = ScenarioOverlay::new().resolve(&base, &extract, CorrelationMode::Proposed);
        assert_eq!(c, base);
        assert_eq!(e, extract);
        assert_eq!(m, CorrelationMode::Proposed);
    }

    #[test]
    fn analysis_level_knobs_do_not_touch_extraction_inputs() {
        let overlay = ScenarioOverlay::new()
            .with_mode(CorrelationMode::GlobalOnly)
            .with_yield_target(1200.0);
        assert!(!overlay.touches_extraction_inputs());

        let netlist = generators::ripple_carry_adder(3).unwrap();
        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (c, e, _) = overlay.resolve(&base, &extract, CorrelationMode::Proposed);
        assert_eq!(
            module_fingerprint(&netlist, &base, &extract),
            module_fingerprint(&netlist, &c, &e),
            "mode/yield overlays must preserve cache keys"
        );
    }

    #[test]
    fn sigma_scale_and_correlation_are_extraction_relevant() {
        assert!(ScenarioOverlay::new()
            .with_sigma_scale(1.3)
            .touches_extraction_inputs());
        assert!(ScenarioOverlay::new()
            .with_correlation(CorrelationModel::paper())
            .touches_extraction_inputs());

        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (scaled, _, _) = ScenarioOverlay::new().with_sigma_scale(1.5).resolve(
            &base,
            &extract,
            CorrelationMode::Proposed,
        );
        for (p, b) in scaled.parameters.iter().zip(&base.parameters) {
            assert_eq!(p.sigma_rel, b.sigma_rel * 1.5);
        }

        let netlist = generators::ripple_carry_adder(3).unwrap();
        assert_ne!(
            module_fingerprint(&netlist, &base, &extract),
            module_fingerprint(&netlist, &scaled, &extract),
            "sigma scaling must re-key cached models"
        );
    }

    #[test]
    fn unit_sigma_scale_resolves_to_the_base_config() {
        // Content-derived keys: scaling by exactly 1.0 must keep the
        // base fingerprints so a grid's nominal point collapses into
        // the baseline group.
        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (c, _, _) = ScenarioOverlay::new().with_sigma_scale(1.0).resolve(
            &base,
            &extract,
            CorrelationMode::Proposed,
        );
        assert_eq!(c, base);
    }

    #[test]
    fn layering_overrides_fields_and_composes_sigma_scales() {
        let lower = ScenarioOverlay::new()
            .with_sigma_scale(1.2)
            .with_yield_target(1000.0);
        let upper = ScenarioOverlay::new()
            .with_sigma_scale(1.5)
            .with_mode(CorrelationMode::GlobalOnly);
        let combined = lower.layered(&upper);
        assert_eq!(combined.sigma_scale, Some(1.2 * 1.5));
        assert_eq!(combined.mode, Some(CorrelationMode::GlobalOnly));
        assert_eq!(combined.yield_target_ps, Some(1000.0));

        // One-sided scales pass through unchanged.
        let only_lower = lower.layered(&ScenarioOverlay::new());
        assert_eq!(only_lower.sigma_scale, Some(1.2));
        let only_upper = ScenarioOverlay::new().layered(&upper);
        assert_eq!(only_upper.sigma_scale, Some(1.5));
    }

    #[test]
    fn config_overlay_rekeys_the_models() {
        let mut high_sigma = SstaConfig::paper();
        for p in &mut high_sigma.parameters {
            p.sigma_rel = (p.sigma_rel * 1.5).min(0.9);
        }
        let overlay = ScenarioOverlay::new().with_config(high_sigma);
        assert!(overlay.touches_extraction_inputs());

        let netlist = generators::ripple_carry_adder(3).unwrap();
        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (c, e, _) = overlay.resolve(&base, &extract, CorrelationMode::Proposed);
        assert_ne!(
            module_fingerprint(&netlist, &base, &extract),
            module_fingerprint(&netlist, &c, &e),
            "sigma changes must re-key cached models"
        );
    }
}
