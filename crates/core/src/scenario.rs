//! Scenario overlays: named what-if variations of an analysis setup.
//!
//! The extraction flow's whole economics rest on reuse — the same IP
//! block analyzed under many designs, corners and configurations, with
//! the characterization cost amortized across them. A
//! [`ScenarioOverlay`] captures one such variation as a *delta* over a
//! base setup: an optional replacement [`SstaConfig`] and/or
//! [`ExtractOptions`] (both feed the module fingerprint, so changing
//! them re-keys the cached models), plus analysis-level knobs that
//! deliberately do **not** touch extraction — the correlation-handling
//! mode of the top-level analysis and an optional yield target read off
//! the final delay distribution.
//!
//! The split matters for caching: two scenarios whose resolved
//! `(SstaConfig, ExtractOptions)` are equal produce equal module
//! fingerprints and therefore *share* extracted models, no matter how
//! their analysis-level knobs differ. The fingerprint machinery
//! ([`crate::fingerprint`]) enforces this by construction — the overlay
//! type just makes the boundary explicit in the API.

use crate::extract::ExtractOptions;
use crate::hier::CorrelationMode;
use crate::params::SstaConfig;

/// A named-scenario delta over a base `(SstaConfig, ExtractOptions,
/// CorrelationMode)` triple.
///
/// Every field is optional; an empty overlay reproduces the base setup
/// exactly. `config` and `extract` are extraction-relevant (they change
/// module fingerprints and thus cache keys); `mode` and
/// `yield_target_ps` are analysis-level only and never invalidate a
/// cached model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioOverlay {
    /// Replaces the base analysis configuration (extraction-relevant).
    pub config: Option<SstaConfig>,
    /// Replaces the base extraction options (extraction-relevant).
    pub extract: Option<ExtractOptions>,
    /// Overrides the correlation handling of the top-level analysis
    /// (analysis-level: cached models are shared with the base).
    pub mode: Option<CorrelationMode>,
    /// Reports parametric yield `P{delay ≤ target}` at this clock
    /// target, in ps (analysis-level: cached models are shared with the
    /// base).
    pub yield_target_ps: Option<f64>,
}

impl ScenarioOverlay {
    /// An empty overlay: the base setup, unchanged.
    pub fn new() -> Self {
        ScenarioOverlay::default()
    }

    /// Replaces the analysis configuration.
    pub fn with_config(mut self, config: SstaConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Replaces the extraction options.
    pub fn with_extract(mut self, extract: ExtractOptions) -> Self {
        self.extract = Some(extract);
        self
    }

    /// Overrides the top-level correlation mode.
    pub fn with_mode(mut self, mode: CorrelationMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Requests a yield read-out at `target_ps`.
    pub fn with_yield_target(mut self, target_ps: f64) -> Self {
        self.yield_target_ps = Some(target_ps);
        self
    }

    /// Whether this overlay can change module fingerprints (i.e. touches
    /// the characterization/extraction inputs). Note the converse does
    /// not hold: replacing the config with a value *equal* to the base
    /// still yields the base fingerprints — keys are content-derived,
    /// never identity-derived.
    pub fn touches_extraction_inputs(&self) -> bool {
        self.config.is_some() || self.extract.is_some()
    }

    /// Resolves the overlay against a base setup, returning the
    /// effective `(config, extract, mode)` triple for this scenario.
    pub fn resolve(
        &self,
        base_config: &SstaConfig,
        base_extract: &ExtractOptions,
        base_mode: CorrelationMode,
    ) -> (SstaConfig, ExtractOptions, CorrelationMode) {
        (
            self.config.clone().unwrap_or_else(|| base_config.clone()),
            self.extract.clone().unwrap_or_else(|| base_extract.clone()),
            self.mode.unwrap_or(base_mode),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::module_fingerprint;
    use ssta_netlist::generators;

    #[test]
    fn empty_overlay_resolves_to_the_base() {
        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (c, e, m) = ScenarioOverlay::new().resolve(&base, &extract, CorrelationMode::Proposed);
        assert_eq!(c, base);
        assert_eq!(e, extract);
        assert_eq!(m, CorrelationMode::Proposed);
    }

    #[test]
    fn analysis_level_knobs_do_not_touch_extraction_inputs() {
        let overlay = ScenarioOverlay::new()
            .with_mode(CorrelationMode::GlobalOnly)
            .with_yield_target(1200.0);
        assert!(!overlay.touches_extraction_inputs());

        let netlist = generators::ripple_carry_adder(3).unwrap();
        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (c, e, _) = overlay.resolve(&base, &extract, CorrelationMode::Proposed);
        assert_eq!(
            module_fingerprint(&netlist, &base, &extract),
            module_fingerprint(&netlist, &c, &e),
            "mode/yield overlays must preserve cache keys"
        );
    }

    #[test]
    fn config_overlay_rekeys_the_models() {
        let mut high_sigma = SstaConfig::paper();
        for p in &mut high_sigma.parameters {
            p.sigma_rel = (p.sigma_rel * 1.5).min(0.9);
        }
        let overlay = ScenarioOverlay::new().with_config(high_sigma);
        assert!(overlay.touches_extraction_inputs());

        let netlist = generators::ripple_carry_adder(3).unwrap();
        let base = SstaConfig::paper();
        let extract = ExtractOptions::default();
        let (c, e, _) = overlay.resolve(&base, &extract, CorrelationMode::Proposed);
        assert_ne!(
            module_fingerprint(&netlist, &base, &extract),
            module_fingerprint(&netlist, &c, &e),
            "sigma changes must re-key cached models"
        );
    }
}
